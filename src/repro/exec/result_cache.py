"""Generation-keyed memoization of full query results.

The routing memo (:class:`~repro.exec.memo.RouteMemo`) spares a
repeated predicate the tree walk and the per-block min-max
intersection, but the surviving blocks are still *scanned* on every
arrival.  :class:`ResultCache` closes that gap: the finished
:class:`~repro.engine.executor.QueryStats` (and the routed BID list
that produced it) is memoized per **(query fingerprint, layout
generation)**, so a repeat of the same query against the same layout
generation skips planning's downstream entirely — no routing, no
pruning, no scan.

The layout *generation* is the invalidation story.  Every layout a
:class:`~repro.db.Database` builds — and every ingest, which produces
a new store — is stamped with a monotonically increasing generation
number.  Serving facades look entries up under the generation of the
layout they serve; a generation change (``db.ingest``,
``db.swap_layout``) therefore makes every old entry unreachable, and
the database additionally purges them eagerly (:meth:`retain`) so the
cache never carries dead weight.  Within one generation the store is
immutable, which is what makes result memoization sound at all.

Entries are shared across facades: a single :class:`ResultCache` can
sit behind the library path (``db.execute``), an unsharded
:class:`~repro.serve.service.LayoutService` and a sharded coordinator
at once — all three run the same
:class:`~repro.exec.pipeline.QueryPipeline` stages and produce
``result_key``-identical stats for the same (query, generation), so
whichever computes first populates the entry for the others.

Alongside the stats entries the cache keeps a second, **byte-bounded**
store of matched row-id arrays (:meth:`get_row_ids` /
:meth:`put_row_ids`), so repeated ``collect_row_ids`` calls are free.
Row-id payloads are bounded by total bytes — not entry count — because
one very unselective query can match more rows than thousands of
selective ones; LRU payloads are dropped once the budget is exceeded,
and an array larger than the whole budget is never admitted.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.workload import Query
from ..engine.executor import QueryStats

__all__ = [
    "CachedResult",
    "DEFAULT_ROW_ID_BUDGET",
    "ResultCache",
    "ResultCacheStats",
]

#: (query fingerprint, layout generation) — see :meth:`ResultCache.key_for`.
_Key = Tuple[object, int]

#: Default byte budget for cached row-id arrays (8 bytes per row id).
DEFAULT_ROW_ID_BUDGET = 32 * 1024 * 1024


@dataclass(frozen=True)
class CachedResult:
    """One memoized query outcome.

    ``stats`` is the first execution's :class:`QueryStats`; every
    deterministic field (``result_key()``) is — by the per-generation
    immutability argument above — exactly what a fresh execution would
    produce.  ``wall_seconds`` inside is the *original* scan's wall
    time; serving facades report the (much smaller) hit latency
    through their metrics instead.
    """

    stats: QueryStats
    routed_block_ids: Optional[Tuple[int, ...]] = None


@dataclass(frozen=True)
class ResultCacheStats:
    """A consistent point-in-time snapshot of cache accounting."""

    hits: int
    misses: int
    entries: int
    evictions: int
    #: Entries dropped by generation purges (ingest / swap_layout).
    invalidated: int
    #: Tuple-scans a fresh execution would have performed but a hit
    #: avoided — the work the cache exists to skip.
    tuples_avoided: int
    #: Row-id store accounting (the byte-bounded collect_row_ids memo).
    row_id_hits: int = 0
    row_id_misses: int = 0
    row_id_entries: int = 0
    row_id_bytes: int = 0
    row_id_evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def row_id_hit_rate(self) -> float:
        total = self.row_id_hits + self.row_id_misses
        return self.row_id_hits / total if total else 0.0

    def since(self, earlier: "ResultCacheStats") -> "ResultCacheStats":
        """Activity between ``earlier`` and this snapshot (counters
        become deltas; ``entries``/``row_id_entries``/``row_id_bytes``
        keep their point-in-time values)."""
        return ResultCacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            entries=self.entries,
            evictions=self.evictions - earlier.evictions,
            invalidated=self.invalidated - earlier.invalidated,
            tuples_avoided=self.tuples_avoided - earlier.tuples_avoided,
            row_id_hits=self.row_id_hits - earlier.row_id_hits,
            row_id_misses=self.row_id_misses - earlier.row_id_misses,
            row_id_entries=self.row_id_entries,
            row_id_bytes=self.row_id_bytes,
            row_id_evictions=self.row_id_evictions - earlier.row_id_evictions,
        )


class ResultCache:
    """Bounded, thread-safe (fingerprint, generation) -> result memo.

    Parameters
    ----------
    cap:
        Maximum stats entries held; inserts past the cap evict
        least-recently-used entries, so a long-lived database under
        ad-hoc traffic cannot grow without limit.
    row_id_byte_budget:
        Total bytes of matched row-id arrays the cache may hold
        (``0`` disables row-id caching entirely).  Row-id payloads are
        bounded by bytes, not entry count.
    """

    def __init__(
        self,
        cap: int = 8192,
        row_id_byte_budget: int = DEFAULT_ROW_ID_BUDGET,
    ) -> None:
        if cap < 1:
            raise ValueError("cap must be >= 1")
        if row_id_byte_budget < 0:
            raise ValueError("row_id_byte_budget must be >= 0")
        self.cap = cap
        self.row_id_byte_budget = row_id_byte_budget
        self._lock = threading.Lock()
        self._entries: "OrderedDict[_Key, CachedResult]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidated = 0
        self._tuples_avoided = 0
        self._row_ids: "OrderedDict[_Key, np.ndarray]" = OrderedDict()
        self._row_id_bytes = 0
        self._row_id_hits = 0
        self._row_id_misses = 0
        self._row_id_evictions = 0

    # ------------------------------------------------------------------

    @staticmethod
    def key_for(query: Query, profile: object = None) -> object:
        """The query fingerprint: every input that feeds a
        deterministic stat.  The predicate alone is NOT enough — two
        statements with the same WHERE clause but different
        projections scan different column counts — so the fingerprint
        also carries the scan columns, the provenance names, and the
        cost profile (``columns_read``/``modeled_ms`` depend on it)."""
        return (
            query.predicate,
            query.scan_columns(),
            query.name,
            query.template,
            profile,
        )

    def get(
        self, query: Query, generation: int, profile: object = None
    ) -> Optional[CachedResult]:
        """Memoized result for ``query`` under ``generation``, if any."""
        key = (self.key_for(query, profile), generation)
        with self._lock:
            hit = self._entries.get(key)
            if hit is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            self._tuples_avoided += hit.stats.tuples_scanned
            return hit

    def put(
        self,
        query: Query,
        generation: int,
        result: CachedResult,
        profile: object = None,
    ) -> None:
        """Memoize one outcome (racing duplicate puts are benign —
        both computed the same deterministic fields)."""
        key = (self.key_for(query, profile), generation)
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.cap:
                self._entries.popitem(last=False)
                self._evictions += 1

    # ------------------------------------------------------------------
    # Row-id store (byte-bounded)
    # ------------------------------------------------------------------

    def get_row_ids(
        self, query: Query, generation: int, profile: object = None
    ) -> Optional[np.ndarray]:
        """Memoized matched row ids for ``query``/``generation``.

        Returns a read-only int64 array, or ``None`` on a miss (the
        caller computes through the engine and calls
        :meth:`put_row_ids`)."""
        key = (self.key_for(query, profile), generation)
        with self._lock:
            hit = self._row_ids.get(key)
            if hit is None:
                self._row_id_misses += 1
                return None
            self._row_ids.move_to_end(key)
            self._row_id_hits += 1
            return hit

    def put_row_ids(
        self,
        query: Query,
        generation: int,
        row_ids: np.ndarray,
        profile: object = None,
    ) -> bool:
        """Memoize a matched row-id array; returns whether it was kept.

        Arrays larger than the whole byte budget are rejected (caching
        them would immediately evict everything else), and a budget of
        ``0`` disables the store entirely; otherwise LRU payloads are
        dropped until the total is back under budget.  The stats
        entry ``cap`` bounds entry count too, so a flood of zero-byte
        arrays (queries matching no rows) cannot grow the key set
        without limit.
        """
        if self.row_id_byte_budget <= 0:
            return False
        arr = np.asarray(row_ids, dtype=np.int64)
        if arr.nbytes > self.row_id_byte_budget:
            return False
        if arr.flags.writeable:
            arr = arr.copy()
            arr.setflags(write=False)
        key = (self.key_for(query, profile), generation)
        with self._lock:
            old = self._row_ids.pop(key, None)
            if old is not None:
                self._row_id_bytes -= old.nbytes
            self._row_ids[key] = arr
            self._row_id_bytes += arr.nbytes
            while (
                self._row_id_bytes > self.row_id_byte_budget
                or len(self._row_ids) > self.cap
            ):
                _, dropped = self._row_ids.popitem(last=False)
                self._row_id_bytes -= dropped.nbytes
                self._row_id_evictions += 1
            return True

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------

    def retain(self, generation: int) -> int:
        """Drop every entry NOT belonging to ``generation``.

        Called by the database whenever the active generation changes
        (ingest, swap_layout): entries of other generations are
        unreachable from the new serving path anyway, so free them —
        stats entries and row-id payloads alike.  Returns the number
        of entries dropped.
        """
        with self._lock:
            stale = [k for k in self._entries if k[1] != generation]
            for key in stale:
                del self._entries[key]
            stale_ids = [k for k in self._row_ids if k[1] != generation]
            for key in stale_ids:
                self._row_id_bytes -= self._row_ids.pop(key).nbytes
            self._invalidated += len(stale) + len(stale_ids)
            return len(stale) + len(stale_ids)

    def clear(self) -> int:
        """Drop everything; returns the number of entries dropped."""
        with self._lock:
            dropped = len(self._entries) + len(self._row_ids)
            self._entries.clear()
            self._row_ids.clear()
            self._row_id_bytes = 0
            self._invalidated += dropped
            return dropped

    # ------------------------------------------------------------------

    def stats(self) -> ResultCacheStats:
        with self._lock:
            return ResultCacheStats(
                hits=self._hits,
                misses=self._misses,
                entries=len(self._entries),
                evictions=self._evictions,
                invalidated=self._invalidated,
                tuples_avoided=self._tuples_avoided,
                row_id_hits=self._row_id_hits,
                row_id_misses=self._row_id_misses,
                row_id_entries=len(self._row_ids),
                row_id_bytes=self._row_id_bytes,
                row_id_evictions=self._row_id_evictions,
            )

    def generations(self) -> Tuple[int, ...]:
        """Distinct generations currently holding entries (sorted)."""
        with self._lock:
            gens = {k[1] for k in self._entries}
            gens.update(k[1] for k in self._row_ids)
            return tuple(sorted(gens))

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"ResultCache(entries={s.entries}, hit_rate={s.hit_rate:.2f}, "
            f"row_id_bytes={s.row_id_bytes}, invalidated={s.invalidated})"
        )
