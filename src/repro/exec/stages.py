"""The pipeline stages.

Each stage is a small object with one job, operating only on the
:class:`~repro.exec.context.ExecContext`:

===================  ====================================================
Stage                Responsibility
===================  ====================================================
:class:`PlanStage`   SQL text -> planned :class:`Query` (memoized planner)
:class:`RouteStage`  qd-tree walk -> routed BID list + candidate count
:class:`ResultCacheStage`
                     generation-keyed full-result memo (get on the way
                     down, put in ``finish`` on the way back up)
:class:`PruneStage`  per-block min-max (SMA) intersection -> survivors
:class:`ScanStage`   scan the survivors on one engine
:class:`MergeStage`  fold scatter-gather parts into one result
:class:`RecordStage` feed the finished execution to a query-log sink
                     (optional tail stage; the adapt control plane's
                     observation point)
===================  ====================================================

Two substitutions cover the wider topologies: the sharded coordinator
replaces prune/scan with :class:`ShardPruneStage` (per-shard survivor
lists) and :class:`ScatterScanStage` (fan out to per-shard schedulers,
gather parts); the multi-layout arbiter replaces route (and absorbs
prune) with :class:`ArbitrateStage`, which scores every candidate
layout with a blocks-surviving × bytes-scanned cost model and binds
the argmin layout to the context.

Stages guard themselves: a stage whose output is already present (a
cache hit filled ``ctx.stats``, the arbiter filled ``ctx.survivors``)
is a no-op, so one canonical stage order serves every configuration.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..core.router import QueryRouter
from ..core.workload import Query
from ..engine.executor import QueryStats, ScanEngine
from ..engine.profiles import CostProfile
from ..sql.planner import SqlPlanner
from ..storage.blocks import BlockStore
from ..storage.schema import Schema
from .context import ExecContext, LayoutBinding
from .errors import AdmissionRejected
from .memo import RouteMemo
from .result_cache import CachedResult, ResultCache

__all__ = [
    "ArbitrateStage",
    "ArbiterChoice",
    "MergeStage",
    "PlanStage",
    "PruneStage",
    "RecordStage",
    "ResultCacheStage",
    "RouteStage",
    "ScanStage",
    "ScatterScanStage",
    "ShardPruneStage",
    "Stage",
    "route_and_count",
]


class Stage:
    """Protocol every pipeline stage implements.

    ``run`` executes on the way down the stage list; ``finish`` runs
    for every stage after the result is known (only the result-cache
    stage uses it, to publish the computed result).
    """

    name = "stage"
    #: Name trace spans use for this stage.  Defaults to ``name``;
    #: stages that share a timing key with the stage they substitute
    #: (the arbiter reports under ``route``, the scatter scan under
    #: ``scan``) override it so traces show the true operation.
    span_name: Optional[str] = None

    def run(self, ctx: ExecContext) -> None:
        raise NotImplementedError

    def finish(self, ctx: ExecContext) -> None:
        """Post-result hook; default no-op."""


class PlanStage(Stage):
    """SQL text -> planned query, through the shared memoized planner."""

    name = "plan"

    def __init__(self, planner: SqlPlanner) -> None:
        self.planner = planner

    def run(self, ctx: ExecContext) -> None:
        ctx.query = self.planner.plan(ctx.sql).query


def route_and_count(
    router: Optional[QueryRouter],
    store: BlockStore,
    query: Query,
    lock: threading.Lock,
) -> Tuple[Optional[Tuple[int, ...]], int]:
    """One qd-tree walk plus the candidate count, shared by every
    routing consumer (:class:`RouteStage` and the multi-layout
    arbiter) so the dedup rule cannot diverge between them.

    The candidate count is deduped against the *full* store: a BID is
    counted once no matter how shards partition (or a future layout
    replicates) it.  ``lock`` serializes tree walks because the
    router keeps latency-sample state.
    """
    if router is None:
        return None, store.num_blocks
    with lock:
        routed = router.route(query).block_ids
    return routed, len(set(routed) & store.bid_set)


class RouteStage(Stage):
    """Qd-tree routing: the ``BID IN (...)`` rewrite (paper Sec. 3.3).

    The candidate count is deduped against the *full* store so a BID is
    counted once no matter how shards partition (or a future layout
    replicates) it.  With a memo, repeated predicate shapes cost two
    dict lookups; without one (the serial baseline), every arrival
    walks the tree from scratch — exactly the pre-serving cost model.
    A small lock serializes tree walks because the router keeps
    latency-sample state.

    Routing runs *before* the result-cache stage (the canonical stage
    order) — a deliberate tradeoff: a cache hit pays the memoized
    route (two dict lookups), and a hit can only re-walk the tree if
    the predicate fell out of the route memo, which cannot happen for
    a fully cached workload because the result cache holds fewer
    entries (8192) than the route memo (16384).
    """

    name = "route"

    def __init__(
        self,
        router: Optional[QueryRouter],
        store: BlockStore,
        memo: Optional[RouteMemo] = None,
    ) -> None:
        self.router = router
        self.store = store
        self.memo = memo
        self._lock = threading.Lock()

    def run(self, ctx: ExecContext) -> None:
        if ctx.routed is not None or ctx.binding is not None:
            return
        if self.memo is not None:
            entry = self.memo.get_or_compute(
                ctx.query.predicate, lambda: self._route(ctx.query)
            )
        else:
            entry = self._route(ctx.query)
        ctx.routed, ctx.considered = entry

    def _route(
        self, query: Query
    ) -> Tuple[Optional[Tuple[int, ...]], int]:
        return route_and_count(self.router, self.store, query, self._lock)


class ResultCacheStage(Stage):
    """Generation-keyed full-result memoization.

    ``run`` consults the cache (a hit fills ``ctx.stats`` and every
    downstream compute stage no-ops — on the sharded configuration no
    shard ever sees the query); ``finish`` publishes a freshly
    computed result.  ``generation`` is fixed for single-layout
    configurations and read off the context when the arbiter chose the
    layout (``generation=None``).
    """

    name = "result_cache"

    def __init__(
        self,
        cache: Optional[ResultCache],
        generation: Optional[int] = 0,
        profile: object = None,
    ) -> None:
        self.cache = cache
        self.generation = generation
        self.profile = profile

    def _generation(self, ctx: ExecContext) -> int:
        return self.generation if self.generation is not None else ctx.generation

    def run(self, ctx: ExecContext) -> None:
        # Stamp the answering generation even when caching is off:
        # ServeResult.generation and the record sink rely on it to
        # attribute every result, cached or not.
        gen = self._generation(ctx)
        ctx.generation = gen
        if self.cache is None:
            return
        hit = self.cache.get(ctx.query, gen, self.profile)
        if hit is not None:
            ctx.stats = hit.stats
            ctx.cached = True
            if ctx.routed is None:
                ctx.routed = hit.routed_block_ids

    def finish(self, ctx: ExecContext) -> None:
        if self.cache is None or ctx.cached or ctx.stats is None:
            return
        self.cache.put(
            ctx.query,
            self._generation(ctx),
            CachedResult(ctx.stats, ctx.routed),
            self.profile,
        )


class PruneStage(Stage):
    """Per-block min-max (SMA) pruning within the routed candidates."""

    name = "prune"

    def __init__(
        self, engine: ScanEngine, memo: Optional[RouteMemo] = None
    ) -> None:
        self.engine = engine
        self.memo = memo

    def run(self, ctx: ExecContext) -> None:
        if ctx.stats is not None or ctx.survivors is not None:
            return
        if self.memo is not None:
            ctx.survivors = self.memo.get_or_compute(
                ctx.query.predicate,
                lambda: tuple(self.engine.prune_blocks(ctx.query, ctx.routed)),
            )
        else:
            ctx.survivors = tuple(
                self.engine.prune_blocks(ctx.query, ctx.routed)
            )


class ScanStage(Stage):
    """Scan the survivor list on one engine (the single-layout path).

    With ``engine=None`` the engine comes from the context's arbitrated
    :class:`~repro.exec.context.LayoutBinding` (multi-layout serving).
    """

    name = "scan"

    def __init__(self, engine: Optional[ScanEngine] = None) -> None:
        self.engine = engine

    def _engine(self, ctx: ExecContext) -> ScanEngine:
        if ctx.binding is not None:
            return ctx.binding.engine
        assert self.engine is not None
        return self.engine

    def run(self, ctx: ExecContext) -> None:
        if ctx.stats is not None:
            return
        ctx.stats = self._engine(ctx).execute_pruned(
            ctx.query, ctx.survivors, ctx.considered
        )

    def collect(self, ctx: ExecContext) -> np.ndarray:
        """Matched row ids for an already-prepared context."""
        return self._engine(ctx).collect_row_ids(
            ctx.query, ctx.survivors, pruned=True
        )


class ShardPruneStage(Stage):
    """Sharded SMA pruning: per-shard survivor lists + owner set.

    Shards are duck-typed: anything with ``engine`` and ``store``
    attributes qualifies (in practice the per-shard
    :class:`~repro.serve.service.LayoutService` instances).
    """

    name = "prune"

    def __init__(
        self, shards: Sequence[object], memo: Optional[RouteMemo] = None
    ) -> None:
        self.shards = tuple(shards)
        self.memo = memo

    def run(self, ctx: ExecContext) -> None:
        if ctx.stats is not None or ctx.per_shard is not None:
            return
        if self.memo is not None:
            entry = self.memo.get_or_compute(
                ctx.query.predicate,
                lambda: self._prune(ctx.query, ctx.routed),
            )
        else:
            entry = self._prune(ctx.query, ctx.routed)
        ctx.per_shard, ctx.shard_considered, ctx.owners = entry

    def _prune(self, query: Query, routed: Optional[Tuple[int, ...]]):
        per_shard = tuple(
            tuple(shard.engine.prune_blocks(query, routed))
            for shard in self.shards
        )
        if routed is not None:
            routed_set = set(routed)
            shard_considered = tuple(
                len(routed_set & shard.store.bid_set) for shard in self.shards
            )
        else:
            shard_considered = tuple(
                shard.store.num_blocks for shard in self.shards
            )
        owners = tuple(i for i, surv in enumerate(per_shard) if surv)
        return per_shard, shard_considered, owners


class ScatterScanStage(Stage):
    """Scatter pre-pruned scans to shard schedulers; gather the parts.

    Only shards owning surviving blocks see the query.  Two-phase so
    one saturated shard cannot head-of-line-block the fan-out: a
    non-blocking pass dispatches to every shard with admission room
    first, then the stragglers are waited on.  The stage also keeps
    the fan-out accounting (mean shards scattered to per query — the
    partition-locality metric).
    """

    name = "scan"
    span_name = "scatter_scan"

    def __init__(self, shards: Sequence[object]) -> None:
        self.shards = tuple(shards)
        self._fanout_lock = threading.Lock()
        self._fanout_queries = 0
        self._fanout_shards = 0

    def run(self, ctx: ExecContext) -> None:
        if ctx.stats is not None:
            return
        t0 = time.perf_counter()
        futures = {}
        deferred = []
        for i in ctx.owners:
            try:
                futures[i] = self.shards[i].submit_pruned(
                    ctx.query,
                    ctx.per_shard[i],
                    ctx.shard_considered[i],
                    block=False,
                )
            except AdmissionRejected:
                deferred.append(i)
        for i in deferred:
            futures[i] = self.shards[i].submit_pruned(
                ctx.query, ctx.per_shard[i], ctx.shard_considered[i]
            )
        ctx.parts = tuple(futures[i].result() for i in ctx.owners)
        ctx.scatter_seconds = time.perf_counter() - t0
        # Per-shard attribution: dotted sub-keys under the stage's
        # timing (excluded from the sum-of-stages identity) plus child
        # trace spans.  Each part's wall time is the shard's own scan
        # clock; the spans all anchor at the scatter start because the
        # coordinator never observes per-shard dispatch instants.
        for i, part in zip(ctx.owners, ctx.parts):
            ctx.timings[f"scan.shard{i}"] = (
                ctx.timings.get(f"scan.shard{i}", 0.0) + part.wall_seconds
            )
            if ctx.trace is not None:
                ctx.trace.add_span(
                    f"scatter_scan.shard{i}",
                    t0,
                    part.wall_seconds,
                    parent="scatter_scan",
                    shard=i,
                    blocks_scanned=part.blocks_scanned,
                    tuples_scanned=part.tuples_scanned,
                    bytes_read=part.bytes_read,
                    rows_returned=part.rows_returned,
                )
        with self._fanout_lock:
            self._fanout_queries += 1
            self._fanout_shards += len(ctx.owners)

    def collect(self, ctx: ExecContext) -> np.ndarray:
        """Matched row ids, unioned across owning shards."""
        parts = [
            self.shards[i].engine.collect_row_ids(
                ctx.query, ctx.per_shard[i], pruned=True
            )
            for i in ctx.owners
        ]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(parts))

    # Fan-out observability -------------------------------------------

    @property
    def mean_fanout(self) -> float:
        with self._fanout_lock:
            if self._fanout_queries == 0:
                return 0.0
            return self._fanout_shards / self._fanout_queries

    def reset_fanout(self) -> None:
        with self._fanout_lock:
            self._fanout_queries = 0
            self._fanout_shards = 0


class MergeStage(Stage):
    """Fold gathered per-shard stats into one bit-identical result.

    Scan totals sum (shards own disjoint blocks); the candidate count
    is the coordinator's deduped value; ``columns_read`` and
    ``modeled_ms`` are recomputed from the merged totals exactly as
    the unsharded scan computes them, so ``result_key()`` comes out
    bit-identical to single-service execution.  On single-engine
    configurations there are no parts and the stage is a no-op.
    """

    name = "merge"

    def __init__(self, profile: CostProfile, schema: Schema) -> None:
        self.profile = profile
        self.schema = schema

    def run(self, ctx: ExecContext) -> None:
        if ctx.stats is not None or ctx.parts is None:
            return
        query = ctx.query
        filter_columns = sorted(query.predicate.referenced_columns())
        scan_columns = sorted(set(filter_columns) | set(query.scan_columns()))
        if not self.profile.columnar:
            scan_columns = list(self.schema.column_names)
        blocks_scanned = sum(p.blocks_scanned for p in ctx.parts)
        tuples_scanned = sum(p.tuples_scanned for p in ctx.parts)
        ctx.stats = QueryStats(
            query_name=query.name,
            template=query.template,
            blocks_considered=ctx.considered,
            blocks_scanned=blocks_scanned,
            tuples_scanned=tuples_scanned,
            rows_returned=sum(p.rows_returned for p in ctx.parts),
            columns_read=len(scan_columns),
            modeled_ms=self.profile.modeled_ms(
                blocks_scanned=blocks_scanned,
                tuples_scanned=tuples_scanned,
                columns_read=len(scan_columns),
            ),
            wall_seconds=ctx.scatter_seconds,
            bytes_read=sum(p.bytes_read for p in ctx.parts),
        )


class RecordStage(Stage):
    """Feed the finished execution to an observability sink.

    The sink is duck-typed — anything with ``observe(ctx)`` qualifies
    (in practice :class:`repro.adapt.log.QueryLog` or the learned
    arbiter's posterior updater) so :mod:`repro.exec` never imports
    the control plane it feeds.  The stage sits at the tail of every
    pipeline configuration that asked for one: by the time it runs,
    ``ctx.stats`` exists whether the result came from the cache, a
    single-engine scan, or the scatter-gather merge.  Sink failures
    must never fail the query — observation is strictly best-effort.
    """

    name = "record"

    def __init__(self, sink: object) -> None:
        self.sink = sink

    def run(self, ctx: ExecContext) -> None:
        if ctx.stats is None:
            return
        try:
            self.sink.observe(ctx)
        except Exception:  # pragma: no cover - defensive: sinks are
            pass  # observability, not execution


# ----------------------------------------------------------------------
# Multi-layout arbitration
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ArbiterChoice:
    """One memoized arbitration decision for a predicate shape."""

    index: int
    routed: Optional[Tuple[int, ...]]
    considered: int
    survivors: Tuple[int, ...]
    #: Per-layout ``(blocks surviving, estimated bytes scanned)``.
    scores: Tuple[Tuple[int, int], ...]


class ArbitrateStage(Stage):
    """Cost-model arbitration across several layouts (route + prune).

    For each unique predicate, the query is routed against every
    layout's qd-tree (when it has one) and SMA-pruned against every
    layout's blocks; each layout is scored with the min-max stats as
    priors: **(blocks surviving, estimated bytes the filter columns
    occupy across those blocks)**.  That per-layout work is
    deterministic for a fixed set of layouts, so it is memoized per
    predicate; the *decision* on top of it is pluggable:

    * without a ``policy`` (the default), scores are compared
      lexicographically and the argmin layout wins — ties go to the
      earliest layout in the candidate list (deterministic);
    * with a ``policy`` (duck-typed: ``choose(query, bindings,
      scores) -> index``, e.g.
      :class:`repro.adapt.arbiter.LearnedArbiter`), the decision is
      re-evaluated on every arrival so a learning policy can fold
      realized costs back into arbitration while the routed/pruned
      entries stay memoized.

    The winning layout is bound to the context and its generation keys
    the result cache downstream — so multi-layout serving reuses the
    exact cache semantics of single-layout serving.
    """

    name = "route"
    span_name = "arbitrate"

    def __init__(
        self,
        bindings: Sequence[LayoutBinding],
        memo: Optional[RouteMemo] = None,
        policy: Optional[object] = None,
    ) -> None:
        if not bindings:
            raise ValueError("ArbitrateStage needs at least one layout")
        self.bindings = tuple(bindings)
        self.memo = memo if memo is not None else RouteMemo()
        self.policy = policy
        self._lock = threading.Lock()

    def choice_for(self, query: Query) -> ArbiterChoice:
        """The arbitration decision for a query — the public explain
        path facades read scores from.  Per-layout entries come from
        the memo; the winning index is re-chosen per call when a
        learning policy is attached."""
        entries = self.memo.get_or_compute(
            query.predicate, lambda: self._score(query)
        )
        scores = tuple(entry[3] for entry in entries)
        if self.policy is not None:
            index = int(self.policy.choose(query, self.bindings, scores))
            if not 0 <= index < len(entries):
                raise ValueError(
                    f"arbiter policy chose layout {index} out of "
                    f"{len(entries)} candidates"
                )
        else:
            index = min(range(len(entries)), key=lambda i: scores[i])
        routed, considered, survivors, _ = entries[index]
        return ArbiterChoice(
            index=index,
            routed=routed,
            considered=considered,
            survivors=survivors,
            scores=scores,
        )

    def run(self, ctx: ExecContext) -> None:
        choice = self.choice_for(ctx.query)
        binding = self.bindings[choice.index]
        ctx.binding = binding
        ctx.generation = binding.generation
        ctx.winner = binding.label
        ctx.routed = choice.routed
        ctx.considered = choice.considered
        ctx.survivors = choice.survivors

    def _score(self, query: Query) -> Tuple[tuple, ...]:
        """Route + prune + score the query against every layout (the
        deterministic, memoizable part of arbitration)."""
        filter_columns = sorted(query.predicate.referenced_columns())
        entries = []
        for binding in self.bindings:
            routed, considered = route_and_count(
                binding.router, binding.store, query, self._lock
            )
            survivors = tuple(binding.engine.prune_blocks(query, routed))
            bytes_est = sum(
                binding.store.block(bid).decoded_nbytes(filter_columns)
                for bid in survivors
            )
            entries.append(
                (routed, considered, survivors, (len(survivors), bytes_est))
            )
        return tuple(entries)
