"""The single-source-of-truth query execution pipeline.

Every way this codebase executes a query — the serial baseline, the
library path (``Database.execute``), the concurrent serving facade
(:class:`~repro.serve.service.LayoutService`), the sharded
scatter-gather coordinator and the multi-layout arbiter — is a thin
*configuration* of one staged :class:`QueryPipeline`::

    PlanStage -> RouteStage -> ResultCacheStage -> PruneStage
              -> ScanStage -> MergeStage

Each stage is a small object operating on an explicit
:class:`ExecContext` (query fingerprint, layout generation, routed /
pruned block sets, per-stage timings).  Configurations differ only in
which collaborators a stage is given: the serial baseline routes and
prunes from scratch on every arrival (no memo, no cache); the library
path adds the generation-keyed result cache and per-handle memos; the
serving facade adds metrics; the sharded coordinator swaps the scan
stage for a scatter-gather over per-shard schedulers; the multi-layout
arbiter swaps the route stage for a cost-model arbitration across
several layouts (see :class:`ArbitrateStage`).

The shared primitives the pipeline is built from — the routing memo,
the generation-keyed result cache, the admission-rejection error and
the :class:`ServeResult` envelope — live here too (they are re-exported
from :mod:`repro.serve` for backwards compatibility).
"""

from .context import ExecContext, LayoutBinding
from .errors import AdmissionRejected
from .memo import RouteMemo
from .pipeline import (
    QueryPipeline,
    ServeResult,
    multi_layout_pipeline,
    serial_pipeline,
    sharded_pipeline,
    single_layout_pipeline,
)
from .result_cache import CachedResult, ResultCache, ResultCacheStats
from .stages import (
    ArbitrateStage,
    MergeStage,
    PlanStage,
    PruneStage,
    RecordStage,
    ResultCacheStage,
    RouteStage,
    ScanStage,
    ScatterScanStage,
    ShardPruneStage,
    Stage,
)

__all__ = [
    "AdmissionRejected",
    "ArbitrateStage",
    "CachedResult",
    "ExecContext",
    "LayoutBinding",
    "MergeStage",
    "PlanStage",
    "PruneStage",
    "QueryPipeline",
    "RecordStage",
    "ResultCache",
    "ResultCacheStage",
    "ResultCacheStats",
    "RouteMemo",
    "RouteStage",
    "ScanStage",
    "ScatterScanStage",
    "ServeResult",
    "ShardPruneStage",
    "Stage",
    "multi_layout_pipeline",
    "serial_pipeline",
    "sharded_pipeline",
    "single_layout_pipeline",
]
