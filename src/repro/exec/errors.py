"""Errors shared across the execution pipeline and the serving tier."""

from __future__ import annotations

__all__ = ["AdmissionRejected"]


class AdmissionRejected(RuntimeError):
    """The admission queue is full and the caller chose not to wait.

    Raised by :class:`repro.serve.scheduler.Scheduler` on a
    non-blocking submit against a full queue; the scatter stage of the
    sharded pipeline catches it to defer saturated shards, which is why
    the class lives here rather than next to the scheduler.
    """
