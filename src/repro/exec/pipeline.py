"""The staged query pipeline and its canonical configurations.

:class:`QueryPipeline` is the one place a query's journey — plan,
route, result-cache, prune, scan, merge — is spelled out; the four
execution paths in this codebase (serial baseline, ``Database.execute``,
:class:`~repro.serve.service.LayoutService`, the sharded coordinator)
plus the multi-layout arbiter are built by the factory functions at
the bottom of this module and differ only in the collaborators their
stages receive.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.router import QueryRouter
from ..engine.executor import QueryStats, ScanEngine
from ..engine.profiles import CostProfile
from ..sql.planner import SqlPlanner
from ..storage.blocks import BlockStore
from .context import ExecContext, LayoutBinding
from .memo import RouteMemo
from .result_cache import ResultCache
from .stages import (
    ArbitrateStage,
    MergeStage,
    PlanStage,
    PruneStage,
    RecordStage,
    ResultCacheStage,
    RouteStage,
    ScanStage,
    ScatterScanStage,
    ShardPruneStage,
    Stage,
)

__all__ = [
    "QueryPipeline",
    "ServeResult",
    "multi_layout_pipeline",
    "serial_pipeline",
    "sharded_pipeline",
    "single_layout_pipeline",
]


@dataclass(frozen=True)
class ServeResult:
    """Outcome of one executed/served query."""

    sql: str
    stats: QueryStats
    #: End-to-end seconds (queue wait + plan + route + scan when the
    #: query went through a scheduler; service time otherwise).
    latency_seconds: float
    #: BIDs the router narrowed the query to (``None`` without a tree).
    routed_block_ids: Optional[Tuple[int, ...]] = None
    #: True when the stats came from the result cache.
    cached: bool = False
    #: Label of the winning layout under multi-layout arbitration.
    winner: Optional[str] = None
    #: Per-stage wall seconds for this execution.  Every configured
    #: stage appears (zero-cost stages report ~0, and each stage's
    #: ``finish`` time folds into its key); ``"queue"`` is the
    #: scheduler queue wait.  The un-dotted keys sum to ≈
    #: ``latency_seconds``.  Dotted keys (``"scan.shard2"``) are
    #: per-shard sub-attributions *inside* the scatter stage — each is
    #: that shard's own scan wall time, so they overlap the ``"scan"``
    #: entry and are excluded from the sum identity.
    stage_seconds: Mapping[str, float] = field(default_factory=dict)
    #: Generation of the layout that answered this query — what makes
    #: a result attributable under concurrent swaps and adaptation.
    generation: int = 0


def _fingerprint(ctx: ExecContext) -> object:
    """Stable query identity for trace ids: the planned query's
    predicate + projection + labels (the same shape the result cache
    keys on, minus cost profile).  Falls back to the SQL text before
    planning succeeded."""
    q = ctx.query
    if q is None:
        return ctx.sql
    return (q.predicate, q.scan_columns(), q.name, q.template)


def _span_attrs(span_name: str, ctx: ExecContext) -> dict:
    """Avoided-work attributes for one just-finished stage span, read
    off the context the stage filled."""
    if span_name == "plan":
        return {"template": ctx.query.template if ctx.query else None}
    if span_name == "route":
        return {
            "considered": ctx.considered,
            "routed": None if ctx.routed is None else len(ctx.routed),
        }
    if span_name == "arbitrate":
        return {
            "winner": ctx.winner,
            "generation": ctx.generation,
            "considered": ctx.considered,
            "survivors": None if ctx.survivors is None else len(ctx.survivors),
        }
    if span_name == "result_cache":
        return {"hit": ctx.cached, "generation": ctx.generation}
    if span_name == "prune":
        if ctx.per_shard is not None:
            return {
                "survivors": sum(len(s) for s in ctx.per_shard),
                "owners": None if ctx.owners is None else len(ctx.owners),
            }
        return {
            "survivors": None if ctx.survivors is None else len(ctx.survivors)
        }
    if span_name in ("scan", "scatter_scan", "merge"):
        attrs: dict = {"cached": ctx.cached}
        if span_name == "scatter_scan":
            attrs["shards"] = 0 if ctx.owners is None else len(ctx.owners)
        if ctx.stats is not None:
            attrs.update(
                blocks_scanned=ctx.stats.blocks_scanned,
                tuples_scanned=ctx.stats.tuples_scanned,
                bytes_read=ctx.stats.bytes_read,
                rows_returned=ctx.stats.rows_returned,
            )
        return attrs
    return {}


class QueryPipeline:
    """An ordered stage list executing queries over shared collaborators.

    Every public execution path builds one of these (see the factory
    functions below) and delegates to :meth:`execute`; there is no
    other route/cache/scan loop in the codebase.
    """

    def __init__(
        self,
        planner: SqlPlanner,
        stages: Sequence[Stage],
        metrics: Optional[object] = None,
        tracer: Optional[object] = None,
    ) -> None:
        self.planner = planner
        self.stages: Tuple[Stage, ...] = tuple(stages)
        #: Optional :class:`~repro.serve.metrics.ServingMetrics`-like
        #: collector (duck-typed so repro.exec never imports repro.serve).
        self.metrics = metrics
        #: Optional :class:`~repro.obs.trace.Tracer`-like recorder
        #: (duck-typed for the same reason).  ``None`` — the default —
        #: keeps execution on the untraced fast path: the only cost is
        #: one ``is None`` check per query.
        self.tracer = tracer
        self._cache_stage: Optional[ResultCacheStage] = next(
            (s for s in self.stages if isinstance(s, ResultCacheStage)), None
        )
        self._scan_stage = next(
            (s for s in self.stages if hasattr(s, "collect")), None
        )

    # ------------------------------------------------------------------

    @property
    def result_cache(self) -> Optional[ResultCache]:
        return self._cache_stage.cache if self._cache_stage else None

    def stage(self, name: str) -> Optional[Stage]:
        """First stage with the given name (observability helpers)."""
        for s in self.stages:
            if s.name == name:
                return s
        return None

    # ------------------------------------------------------------------

    def execute(
        self, sql: str, admitted_at: Optional[float] = None
    ) -> ServeResult:
        """Run one statement through every stage; returns its result.

        ``admitted_at`` is the scheduler-admission timestamp when the
        call arrives through a worker pool (latency then includes the
        queue wait); defaults to now for direct calls.
        """
        t_admit = admitted_at if admitted_at is not None else time.perf_counter()
        ctx = ExecContext(sql=sql, admitted_at=t_admit)
        tracer = self.tracer
        tb = None
        if tracer is not None and getattr(tracer, "enabled", True):
            tb = tracer.begin_query(sql)
            ctx.trace = tb
        t_start = time.perf_counter()
        # Queue wait: admission-to-execution gap (≈0 on direct calls).
        ctx.timings["queue"] = t_start - t_admit
        if tb is not None:
            tb.add_span("queue", t_admit, t_start - t_admit)
        for stage in self.stages:
            t0 = time.perf_counter()
            stage.run(ctx)
            elapsed = time.perf_counter() - t0
            ctx.timings[stage.name] = ctx.timings.get(stage.name, 0.0) + elapsed
            if tb is not None:
                tb.add_span(
                    stage.span_name or stage.name,
                    t0,
                    elapsed,
                    **_span_attrs(stage.span_name or stage.name, ctx),
                )
        for stage in self.stages:
            t0 = time.perf_counter()
            stage.finish(ctx)
            # finish-time work (result-cache publish) folds into the
            # owning stage's key so the sum-of-stages identity holds.
            ctx.timings[stage.name] += time.perf_counter() - t0
        latency = time.perf_counter() - t_admit
        if self.metrics is not None:
            self.metrics.record(
                latency, ctx.stats, cached=ctx.cached, winner=ctx.winner
            )
        if tb is not None:
            stats = ctx.stats
            tb.finish(
                fingerprint=_fingerprint(ctx),
                generation=ctx.generation,
                cached=ctx.cached,
                winner=ctx.winner,
                blocks_scanned=stats.blocks_scanned if stats else 0,
                tuples_scanned=stats.tuples_scanned if stats else 0,
                bytes_read=stats.bytes_read if stats else 0,
                rows_returned=stats.rows_returned if stats else 0,
                latency_seconds=latency,
            )
        return ServeResult(
            sql=sql,
            stats=ctx.stats,
            latency_seconds=latency,
            routed_block_ids=ctx.routed,
            cached=ctx.cached,
            winner=ctx.winner,
            stage_seconds=dict(ctx.timings),
            generation=ctx.generation,
        )

    def prepare(self, sql: str) -> ExecContext:
        """Run plan/route/prune (and arbitration) only — everything a
        non-scan consumer like ``collect_row_ids`` needs, without
        touching the result cache or scanning."""
        ctx = ExecContext(sql=sql, admitted_at=time.perf_counter())
        for stage in self.stages:
            if isinstance(stage, (ResultCacheStage, MergeStage)):
                continue
            if stage is self._scan_stage:
                continue
            stage.run(ctx)
        return ctx

    def collect_row_ids(self, sql: str) -> np.ndarray:
        """Matched original-table row ids (sorted, deduped) for one
        statement, through the byte-bounded row-id cache when this
        configuration carries a result cache.

        The returned array is always **read-only** — cache hits hand
        out the shared stored array, so the miss path freezes its
        fresh array too rather than letting mutability depend on
        cache state.  Callers needing to mutate should copy.
        """
        ctx = self.prepare(sql)
        cache = self.result_cache
        generation = (
            self._cache_stage._generation(ctx) if self._cache_stage else 0
        )
        if cache is not None:
            hit = cache.get_row_ids(ctx.query, generation)
            if hit is not None:
                return hit
        ids = self._scan_stage.collect(ctx)
        ids.setflags(write=False)
        if cache is not None:
            cache.put_row_ids(ctx.query, generation, ids)
        return ids


# ----------------------------------------------------------------------
# Canonical configurations
# ----------------------------------------------------------------------


def _with_record(stages: list, record_sink: Optional[object]) -> list:
    """Append the observability tail stage when a sink was asked for.

    Every factory funnels through here so all four execution paths
    (serial, single-layout, sharded, multi-layout) populate the same
    query-log shape — the adapt control plane's one observation point.
    """
    if record_sink is not None:
        stages.append(RecordStage(record_sink))
    return stages


def serial_pipeline(
    planner: SqlPlanner,
    engine: ScanEngine,
    router: Optional[QueryRouter],
    store: BlockStore,
    record_sink: Optional[object] = None,
    tracer: Optional[object] = None,
) -> QueryPipeline:
    """The pre-serving baseline: no memo, no cache, no metrics —
    every arrival plans (memoized planner), routes, prunes and scans
    from scratch, one at a time."""
    return single_layout_pipeline(
        planner=planner,
        engine=engine,
        router=router,
        store=store,
        result_cache=None,
        memoize=False,
        record_sink=record_sink,
        tracer=tracer,
    )


def single_layout_pipeline(
    planner: SqlPlanner,
    engine: ScanEngine,
    router: Optional[QueryRouter],
    store: BlockStore,
    result_cache: Optional[ResultCache] = None,
    generation: int = 0,
    metrics: Optional[object] = None,
    memoize: bool = True,
    record_sink: Optional[object] = None,
    tracer: Optional[object] = None,
) -> QueryPipeline:
    """One engine over one layout: ``Database.execute`` (cache, no
    metrics) and :class:`~repro.serve.service.LayoutService` (cache +
    metrics) are both this configuration."""
    stages = [
        PlanStage(planner),
        RouteStage(router, store, memo=RouteMemo() if memoize else None),
        ResultCacheStage(result_cache, generation, profile=engine.profile),
        PruneStage(engine, memo=RouteMemo() if memoize else None),
        ScanStage(engine),
        MergeStage(engine.profile, store.schema),
    ]
    return QueryPipeline(
        planner, _with_record(stages, record_sink), metrics=metrics,
        tracer=tracer,
    )


def sharded_pipeline(
    planner: SqlPlanner,
    shards: Sequence[object],
    router: Optional[QueryRouter],
    store: BlockStore,
    profile: CostProfile,
    result_cache: Optional[ResultCache] = None,
    generation: int = 0,
    metrics: Optional[object] = None,
    record_sink: Optional[object] = None,
    tracer: Optional[object] = None,
) -> QueryPipeline:
    """The scatter-gather coordinator: routing and pruning happen once
    at the coordinator (per-shard survivor lists), the scan stage fans
    out to the shard schedulers, and the merge stage folds the parts
    into one bit-identical result."""
    stages = [
        PlanStage(planner),
        RouteStage(router, store, memo=RouteMemo()),
        ResultCacheStage(result_cache, generation, profile=profile),
        ShardPruneStage(shards, memo=RouteMemo()),
        ScatterScanStage(shards),
        MergeStage(profile, store.schema),
    ]
    return QueryPipeline(
        planner, _with_record(stages, record_sink), metrics=metrics,
        tracer=tracer,
    )


def multi_layout_pipeline(
    planner: SqlPlanner,
    bindings: Sequence[LayoutBinding],
    profile: CostProfile,
    result_cache: Optional[ResultCache] = None,
    metrics: Optional[object] = None,
    arbiter_policy: Optional[object] = None,
    record_sink: Optional[object] = None,
    tracer: Optional[object] = None,
) -> QueryPipeline:
    """Cost-arbitrated serving over several layouts of one table: the
    arbitration stage routes + prunes against every layout and binds
    the cheapest — by the static (blocks-surviving, bytes-scanned)
    argmin, or by ``arbiter_policy`` (e.g. the learned bandit in
    :mod:`repro.adapt.arbiter`) when one is given; the result cache
    keys on the winner's generation."""
    stages = [
        PlanStage(planner),
        ArbitrateStage(bindings, policy=arbiter_policy),
        ResultCacheStage(result_cache, generation=None, profile=profile),
        ScanStage(engine=None),
        MergeStage(profile, bindings[0].store.schema),
    ]
    return QueryPipeline(
        planner, _with_record(stages, record_sink), metrics=metrics,
        tracer=tracer,
    )
