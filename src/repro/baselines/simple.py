"""Workload-oblivious baseline partitioners (paper Sec. 7.3).

* :class:`RandomPartitioner` — shuffles records into fixed-size blocks
  (the paper's TPC-H baseline; equivalent to arrival-order row groups
  over uniformly shuffled data).
* :class:`RangePartitioner` — range partitioning on one column,
  typically an ingest-time column (the deployed default for the
  paper's ErrorLog workloads; also covers "date partitioning",
  Sec. 2.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..storage.table import Table

__all__ = ["RandomPartitioner", "RangePartitioner"]


@dataclass
class RandomPartitioner:
    """Shuffle rows and chop them into blocks of ``block_size`` rows."""

    block_size: int
    seed: int = 0
    name: str = "random"

    def partition(self, table: Table) -> np.ndarray:
        """Per-row BID assignment."""
        if self.block_size < 1:
            raise ValueError("block_size must be >= 1")
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(table.num_rows)
        bids = np.empty(table.num_rows, dtype=np.int64)
        bids[order] = np.arange(table.num_rows) // self.block_size
        return bids


@dataclass
class RangePartitioner:
    """Sort by ``column`` and chop into blocks of ``block_size`` rows.

    With ``column`` set to an ingest-time attribute this is the
    paper's "Range baseline"; block min-max indexes then prune on the
    sort column only.
    """

    column: str
    block_size: int
    name: str = "range"

    def partition(self, table: Table) -> np.ndarray:
        """Per-row BID assignment."""
        if self.block_size < 1:
            raise ValueError("block_size must be >= 1")
        order = np.argsort(table.column(self.column), kind="stable")
        bids = np.empty(table.num_rows, dtype=np.int64)
        bids[order] = np.arange(table.num_rows) // self.block_size
        return bids
