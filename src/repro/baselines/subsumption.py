"""Predicate implication ("subsumption") tests.

Sun et al.'s Bottom-Up row grouping scores each feature by the number
of queries it *subsumes*: query ``q`` is subsumed by feature ``f`` when
``q`` is stricter than ``f`` (``q ⇒ f``), because then a block where no
tuple satisfies ``f`` can be skipped for ``q`` (paper Sec. 2.2.2).

Implication checking here is sound but conservative (it may miss some
implications, never invents one):

* unary vs unary on the same column: value-set containment;
* ``AND(q1..qk) ⇒ f`` if **some** conjunct implies ``f``;
* ``OR(q1..qk) ⇒ f`` only if **every** disjunct implies ``f``;
* advanced cuts: only syntactic identity.
"""

from __future__ import annotations

from typing import Optional

from ..core.hypercube import Interval
from ..core.predicates import (
    AdvancedCut,
    And,
    ColumnPredicate,
    Not,
    Op,
    Or,
    Predicate,
    TruePredicate,
)

__all__ = ["implies", "unary_implies"]


def _value_interval(pred: ColumnPredicate) -> Optional[Interval]:
    """The satisfied value set as an interval, when expressible."""
    if pred.op.is_range or pred.op is Op.EQ:
        return Interval.from_predicate(pred)
    return None


def unary_implies(p: ColumnPredicate, f: ColumnPredicate) -> bool:
    """Does unary ``p`` imply unary ``f``? (conservative)"""
    if p.column != f.column:
        return False
    if p == f:
        return True
    p_set = frozenset(p.values) if p.op.is_equality else None
    f_set = frozenset(f.values) if f.op.is_equality else None
    if p_set is not None and f_set is not None:
        return p_set <= f_set
    p_iv = _value_interval(p)
    f_iv = _value_interval(f)
    if p_iv is not None and f_iv is not None:
        return f_iv.contains_interval(p_iv)
    if p_set is not None and f_iv is not None:
        return all(f_iv.contains(v) for v in p_set)
    if p_iv is not None and f_set is not None:
        # An interval implies a finite set only when degenerate.
        if p.op is Op.EQ:
            return p.value in f_set
        return False
    return False


def implies(query: Predicate, feature: Predicate) -> bool:
    """Does ``query`` imply ``feature``? (conservative)

    ``feature`` is expected to be a unary predicate or an advanced cut
    (that is what the Bottom-Up feature set contains).
    """
    if isinstance(feature, TruePredicate):
        return True
    if isinstance(query, TruePredicate):
        return False
    if isinstance(query, And):
        return any(implies(child, feature) for child in query.children)
    if isinstance(query, Or):
        return all(implies(child, feature) for child in query.children)
    if isinstance(query, Not):
        # Only syntactic matches for negations.
        return isinstance(feature, Not) and query == feature
    if isinstance(query, AdvancedCut) or isinstance(feature, AdvancedCut):
        return query == feature
    if isinstance(query, ColumnPredicate) and isinstance(feature, ColumnPredicate):
        return unary_implies(query, feature)
    return False
