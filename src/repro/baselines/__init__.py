"""Baseline partitioners the paper compares against (Sec. 7.3)."""

from .hash_part import HashPartitioner
from .bottom_up import BottomUpConfig, BottomUpPartitioner, select_features
from .kdtree import KdTreePartitioner
from .simple import RandomPartitioner, RangePartitioner
from .subsumption import implies, unary_implies

__all__ = [
    "BottomUpConfig",
    "HashPartitioner",
    "BottomUpPartitioner",
    "KdTreePartitioner",
    "RandomPartitioner",
    "RangePartitioner",
    "implies",
    "select_features",
    "unary_implies",
]
