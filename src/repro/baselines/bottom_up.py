"""Bottom-Up row grouping (Sun et al. 2014) — the state-of-the-art
comparison of the paper (Sec. 2.2.2, Sec. 7.3).

Pipeline:

1. **Feature selection.**  Candidate features are the workload's
   candidate cuts.  Features are ranked by *frequency* — the number of
   queries each feature subsumes — after a topological pass over the
   feature subsumption relation; picking a feature discounts the
   frequency of others that subsume common queries; features whose
   frequency falls below a threshold are dropped, and at most
   ``max_features`` survive (the paper configures 15).

   The **BU+** tuning from paper Sec. 7.5 additionally rejects features
   with selectivity above ``selectivity_threshold`` (the untuned
   selector otherwise latches onto frequent-but-unselective predicates
   and skips almost nothing).

2. **Vectorization.**  Every tuple is mapped to its feature bitmap;
   identical bitmaps are grouped with a row weight.

3. **Greedy clustering.**  Each unique vector starts as a block;
   repeatedly merge the pair with the lowest penalty (the increase in
   scanned tuples caused by the union of their query-scan sets) until
   every block holds at least ``min_block_size`` rows.

The resulting blocks have OR-of-bitmaps descriptions but are **not
complete** — which is precisely the property the qd-tree fixes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.cuts import CutRegistry
from ..core.workload import Workload
from ..storage.table import Table
from .subsumption import implies

__all__ = ["BottomUpConfig", "BottomUpPartitioner", "select_features"]


@dataclass
class BottomUpConfig:
    """Knobs for the Bottom-Up partitioner."""

    min_block_size: int
    max_features: int = 15
    frequency_threshold: int = 1
    #: BU+ tuning: drop features more selective than this fraction
    #: (None reproduces the untuned original algorithm).
    selectivity_threshold: Optional[float] = None
    #: Clustering produces logical row *groups*; groups larger than
    #: this are stored as multiple physical blocks so every layout in
    #: an experiment has a comparable number of blocks (paper Sec. 7.1
    #: "we ensure that all layouts have a comparable number of
    #: blocks").  ``None`` keeps one block per group.
    max_block_size: Optional[int] = None
    name: str = "bottom-up"


def select_features(
    registry: CutRegistry,
    workload: Workload,
    table: Table,
    config: BottomUpConfig,
) -> List[int]:
    """Pick up to ``max_features`` cut indices as skipping features."""
    cuts = list(registry.cuts)
    num_queries = len(workload)

    # BU+ tuning: drop features touching too many rows up front — they
    # cannot skip much, and (being the most general) they would
    # otherwise dominate both the frequency ranking and the
    # topological eligibility rule.  This reproduces the paper's fix
    # for untuned Bottom-Up latching onto frequent-but-unselective
    # predicates (Sec. 7.5).
    candidates = list(range(len(cuts)))
    if config.selectivity_threshold is not None:
        columns = table.columns()
        candidates = [
            fi
            for fi in candidates
            if float(cuts[fi].evaluate(columns).mean())
            <= config.selectivity_threshold
        ]
    if not candidates:
        return []

    # Which queries each surviving feature subsumes.
    subsumed = np.zeros((len(cuts), num_queries), dtype=bool)
    for fi in candidates:
        for qi, query in enumerate(workload):
            subsumed[fi, qi] = implies(query.predicate, cuts[fi])
    frequencies = subsumed.sum(axis=1).astype(np.float64)

    # Feature-vs-feature subsumption for the topological ordering: a
    # feature is only eligible while not implied by... precisely, a
    # feature is eligible when it does not imply any other remaining
    # feature (most-general-first, matching the paper's description).
    feature_subsumes = np.zeros((len(cuts), len(cuts)), dtype=bool)
    for i in candidates:
        for j in candidates:
            if i != j:
                feature_subsumes[i, j] = implies(cuts[j], cuts[i])

    selected: List[int] = []
    remaining = set(candidates)
    covered = np.zeros(num_queries, dtype=bool)
    while remaining and len(selected) < config.max_features:
        eligible = [
            fi
            for fi in remaining
            if not any(
                feature_subsumes[fj, fi] for fj in remaining if fj != fi
            )
        ]
        if not eligible:
            eligible = list(remaining)
        best = max(eligible, key=lambda fi: frequencies[fi])
        if frequencies[best] < config.frequency_threshold:
            break
        selected.append(best)
        remaining.discard(best)
        covered |= subsumed[best]
        # Discount: remaining features lose credit for queries already
        # covered by the chosen feature.
        for fi in remaining:
            frequencies[fi] = float((subsumed[fi] & ~covered).sum())
    return selected


def _split_large_groups(bids: np.ndarray, max_block_size: int) -> np.ndarray:
    """Re-chunk each logical group into physical blocks of at most
    ``max_block_size`` rows (dense BIDs, row order preserved)."""
    if max_block_size < 1:
        raise ValueError("max_block_size must be >= 1")
    out = np.empty_like(bids)
    next_bid = 0
    for group in np.unique(bids):
        rows = np.flatnonzero(bids == group)
        num_chunks = max(1, int(np.ceil(len(rows) / max_block_size)))
        for chunk_index in range(num_chunks):
            chunk = rows[
                chunk_index * max_block_size : (chunk_index + 1) * max_block_size
            ]
            out[chunk] = next_bid
            next_bid += 1
    return out


@dataclass
class BottomUpPartitioner:
    """The Sun et al. clustering partitioner."""

    registry: CutRegistry
    workload: Workload
    config: BottomUpConfig
    #: Populated by :meth:`partition` for introspection.
    selected_features: List[int] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.config.name

    # ------------------------------------------------------------------

    def partition(self, table: Table) -> np.ndarray:
        """Per-row BID assignment."""
        config = self.config
        self.selected_features = select_features(
            self.registry, self.workload, table, config
        )
        if not self.selected_features:
            # No usable features: a single block (matching the paper's
            # observation that untuned BU can degenerate to ~full scan).
            return np.zeros(table.num_rows, dtype=np.int64)
        columns = table.columns()
        feature_bits = np.stack(
            [
                self.registry.cut(fi).evaluate(columns)
                for fi in self.selected_features
            ]
        ).T  # (rows, features)
        vectors, inverse, counts = np.unique(
            feature_bits, axis=0, return_inverse=True, return_counts=True
        )
        scan_sets = self._query_scan_sets(vectors)
        group_of_vector = self._cluster(
            counts.astype(np.int64), scan_sets, config.min_block_size
        )
        bids = group_of_vector[inverse]
        if config.max_block_size is not None:
            bids = _split_large_groups(bids, config.max_block_size)
        return bids

    # ------------------------------------------------------------------

    def _query_scan_sets(self, vectors: np.ndarray) -> np.ndarray:
        """(num_vectors, num_queries) — True where the query must scan.

        Query ``q`` can skip a block iff some selected feature has bit
        0 in the block's bitmap and subsumes ``q``.
        """
        num_vectors = len(vectors)
        num_queries = len(self.workload)
        subsumes = np.zeros((len(self.selected_features), num_queries), dtype=bool)
        for si, fi in enumerate(self.selected_features):
            cut = self.registry.cut(fi)
            for qi, query in enumerate(self.workload):
                subsumes[si, qi] = implies(query.predicate, cut)
        must_scan = np.ones((num_vectors, num_queries), dtype=bool)
        for vi in range(num_vectors):
            zero_features = np.flatnonzero(~vectors[vi])
            if len(zero_features):
                skippable = subsumes[zero_features].any(axis=0)
                must_scan[vi] = ~skippable
        return must_scan

    def _cluster(
        self,
        weights: np.ndarray,
        scan_sets: np.ndarray,
        min_block_size: int,
    ) -> np.ndarray:
        """Greedy lowest-penalty merging until all blocks reach ``b``.

        Returns the block id of each unique feature vector.

        Each iteration takes the smallest under-``b`` block and merges
        it with its lowest-penalty partner; the partner search is one
        vectorized pass over all alive blocks.  (Sun et al. search the
        global minimum pair per iteration, which is quadratic per merge
        and cubic overall; the smallest-block order produces the same
        kind of clustering at O(k^2) total and is the standard
        practical variant.)
        """
        num = len(weights)
        sizes = weights.astype(np.int64).copy()
        sets = scan_sets.copy()
        alive = np.ones(num, dtype=bool)
        parent = np.arange(num)

        while True:
            alive_idx = np.flatnonzero(alive)
            if len(alive_idx) < 2:
                break
            small_mask = sizes[alive_idx] < min_block_size
            if not small_mask.any():
                break
            # Smallest under-b block merges first.
            i = int(alive_idx[small_mask][np.argmin(sizes[alive_idx][small_mask])])
            # "Once the size of a block reaches b, it does not further
            # merge with other blocks" (paper Sec. 2.2.2): prefer
            # partners still under b so finished blocks stay near b and
            # the final block count is comparable to other layouts.
            others = alive_idx[(alive_idx != i) & (sizes[alive_idx] < min_block_size)]
            if len(others) == 0:
                others = alive_idx[alive_idx != i]
            # penalty(i, j) = w_i * |Q_j \ Q_i| + w_j * |Q_i \ Q_j|
            only_j = (sets[others] & ~sets[i]).sum(axis=1)
            only_i = (~sets[others] & sets[i]).sum(axis=1)
            penalties = sizes[i] * only_j + sizes[others] * only_i
            j = int(others[np.argmin(penalties)])
            sizes[j] += sizes[i]
            sets[j] |= sets[i]
            alive[i] = False
            parent[i] = j

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        roots = sorted({find(i) for i in range(num)})
        root_to_bid = {root: bid for bid, root in enumerate(roots)}
        return np.array([root_to_bid[find(i)] for i in range(num)], dtype=np.int64)
