"""Classic k-d tree partitioner (Bentley 1975).

The paper positions the k-d tree as the heuristic special case of a
qd-tree (Sec. 3): cuts alternate round-robin across dimensions and
split at each dimension's median, with no workload awareness.  Included
as an extra baseline to quantify what workload guidance buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..storage.table import Table

__all__ = ["KdTreePartitioner"]


@dataclass
class KdTreePartitioner:
    """Median-split k-d tree over the given (numeric) columns."""

    columns: Sequence[str]
    min_block_size: int
    name: str = "kd-tree"

    def partition(self, table: Table) -> np.ndarray:
        """Per-row BID assignment."""
        if not self.columns:
            raise ValueError("kd-tree needs at least one column")
        if self.min_block_size < 1:
            raise ValueError("min_block_size must be >= 1")
        bids = np.zeros(table.num_rows, dtype=np.int64)
        next_bid = [0]
        data = {name: table.column(name) for name in self.columns}

        def split(indices: np.ndarray, depth: int) -> None:
            if len(indices) < 2 * self.min_block_size:
                bids[indices] = next_bid[0]
                next_bid[0] += 1
                return
            column = self.columns[depth % len(self.columns)]
            values = data[column][indices]
            median = np.median(values)
            left_mask = values < median
            # Degenerate medians (constant columns) end the recursion.
            if not left_mask.any() or left_mask.all():
                bids[indices] = next_bid[0]
                next_bid[0] += 1
                return
            if left_mask.sum() < self.min_block_size or (
                (~left_mask).sum() < self.min_block_size
            ):
                bids[indices] = next_bid[0]
                next_bid[0] += 1
                return
            split(indices[left_mask], depth + 1)
            split(indices[~left_mask], depth + 1)

        split(np.arange(table.num_rows), 0)
        return bids
