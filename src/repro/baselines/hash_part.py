"""Hash partitioner: the other industry-standard scheme (paper Sec. 1).

Production warehouses commonly hash-partition on selected fields for
parallelism and load balance.  Hashing scatters value ranges across all
blocks, so min-max indexes cannot prune range queries at all; only
exact-match queries on the hash column can skip (a block holds one hash
residue class).  Included to quantify the paper's claim that neither
hash nor range partitioning "equate the sophisticated combination of
cuts produced by a qd-tree layout" (Sec. 7.7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..storage.table import Table

__all__ = ["HashPartitioner"]


def _mix(values: np.ndarray) -> np.ndarray:
    """A cheap 64-bit integer hash (splitmix64 finalizer)."""
    h = values.astype(np.uint64, copy=True)
    h ^= h >> np.uint64(30)
    h *= np.uint64(0xBF58476D1CE4E5B9)
    h ^= h >> np.uint64(27)
    h *= np.uint64(0x94D049BB133111EB)
    h ^= h >> np.uint64(31)
    return h


@dataclass
class HashPartitioner:
    """Hash rows into ``num_blocks`` buckets on the given columns."""

    columns: Sequence[str]
    num_blocks: int
    name: str = "hash"

    def partition(self, table: Table) -> np.ndarray:
        """Per-row BID assignment."""
        if not self.columns:
            raise ValueError("hash partitioner needs at least one column")
        if self.num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        acc = np.zeros(table.num_rows, dtype=np.uint64)
        for i, column in enumerate(self.columns):
            values = table.column(column)
            # Quantize floats so equal values hash equally.
            ints = np.round(values * 1_000_003).astype(np.int64).view(np.uint64)
            acc ^= _mix(ints + np.uint64(i * 0x9E3779B97F4A7C15))
        return (acc % np.uint64(self.num_blocks)).astype(np.int64)
