"""Shared container for (dataset, workload) benchmark pairs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.cuts import CutRegistry
from ..core.workload import Workload
from ..storage.schema import Schema
from ..storage.table import Table

__all__ = ["Dataset"]


@dataclass
class Dataset:
    """A generated table plus the workload that targets it.

    ``min_block_size`` is the paper's ``b`` scaled to the generated
    row count (the paper uses 100K for TPC-H at 77M rows and 50K for
    ErrorLog at ~100M rows; generators scale proportionally).
    """

    name: str
    schema: Schema
    table: Table
    workload: Workload
    min_block_size: int
    #: Optional held-out workload for robustness experiments.
    test_workload: Optional[Workload] = None

    def registry(self) -> CutRegistry:
        """Candidate cuts extracted from the (train) workload."""
        return CutRegistry.from_workload(self.schema, self.workload)

    @property
    def num_rows(self) -> int:
        return self.table.num_rows

    def __repr__(self) -> str:
        return (
            f"Dataset({self.name!r}, rows={self.table.num_rows}, "
            f"queries={len(self.workload)})"
        )
