"""Micro-scenarios from the paper's motivating figures.

* :func:`disjunctive_dataset` — Figure 3: a 2-column uniform dataset
  with a disjunctive query whose cuts carry zero *individual* skipping
  gain, defeating Greedy (50.5% scan) while Woodblock finds the 4-block
  layout (10.4%).
* :func:`overlap_dataset` — Figure 4: four N-record clusters plus one
  shared center record selected by all four queries; without
  replication any binary cut chain leaves 3N extra tuples scanned.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.predicates import (
    column_ge,
    column_gt,
    column_le,
    column_lt,
    conjunction,
    disjunction,
)
from ..core.workload import Query, Workload
from ..storage.schema import Schema, numeric
from ..storage.table import Table
from .base import Dataset

__all__ = ["disjunctive_dataset", "overlap_dataset"]


def disjunctive_dataset(num_rows: int = 100_000, seed: int = 0) -> Dataset:
    """The Figure 3 scenario.

    ``cpu ~ Unif[0, 100)``, ``disk ~ Unif[0, 1)``;
    Q1: ``cpu < 10 OR cpu > 90`` (anomaly hunt at both ends),
    Q2: ``disk < 0.01``.
    Candidate cuts: ``{cpu<10, cpu>90, disk<0.01}``.
    """
    rng = np.random.default_rng(seed)
    schema = Schema([numeric("cpu", (0.0, 100.0)), numeric("disk", (0.0, 1.0))])
    table = Table(
        schema,
        {
            "cpu": rng.uniform(0.0, 100.0, num_rows),
            "disk": rng.uniform(0.0, 1.0, num_rows),
        },
    )
    q1 = Query(
        disjunction([column_lt("cpu", 10.0), column_gt("cpu", 90.0)]),
        name="Q1",
        template="disjunctive-cpu",
        columns=("cpu", "disk"),
    )
    q2 = Query(
        column_lt("disk", 0.01),
        name="Q2",
        template="disk-filter",
        columns=("cpu", "disk"),
    )
    # b must sit below the 1%-selective disk region (Q2 selects ~1% of
    # rows) or the disk cut itself becomes illegal under the >= b
    # children constraint.
    return Dataset(
        name="fig3-disjunctive",
        schema=schema,
        table=table,
        workload=Workload([q1, q2]),
        min_block_size=max(1, num_rows // 250),
    )


def overlap_dataset(cluster_size: int = 1000, seed: int = 0) -> Dataset:
    """The Figure 4 scenario.

    Four clusters of ``N = cluster_size`` records sit in the corners of
    query rectangles that all share exactly one record at the center of
    the space.  Each query selects its cluster plus the center record
    (N + 1 records); cutting at the query edges in a binary fashion
    strands the center record with one lucky quadrant.
    """
    rng = np.random.default_rng(seed)
    n = cluster_size
    centers = [(30.0, 70.0), (70.0, 70.0), (30.0, 30.0), (70.0, 30.0)]
    xs: List[np.ndarray] = []
    ys: List[np.ndarray] = []
    for cx, cy in centers:
        xs.append(rng.uniform(cx - 15.0, cx + 15.0, n))
        ys.append(rng.uniform(cy - 15.0, cy + 15.0, n))
    # The shared record at the exact center of the space.
    xs.append(np.array([50.0]))
    ys.append(np.array([50.0]))
    schema = Schema([numeric("a1", (0.0, 100.0)), numeric("a2", (0.0, 100.0))])
    table = Table(
        schema, {"a1": np.concatenate(xs), "a2": np.concatenate(ys)}
    )
    # Query rectangles: each covers one cluster and extends to (50, 50).
    rects = [
        (10.0, 50.0, 50.0, 90.0),  # top-left
        (50.0, 90.0, 50.0, 90.0),  # top-right
        (10.0, 50.0, 10.0, 50.0),  # bottom-left
        (50.0, 90.0, 10.0, 50.0),  # bottom-right
    ]
    queries = []
    for i, (x_lo, x_hi, y_lo, y_hi) in enumerate(rects):
        pred = conjunction(
            [
                column_ge("a1", x_lo),
                column_le("a1", x_hi),
                column_ge("a2", y_lo),
                column_le("a2", y_hi),
            ]
        )
        queries.append(
            Query(pred, name=f"Q{i + 1}", template=f"quadrant-{i + 1}")
        )
    return Dataset(
        name="fig4-overlap",
        schema=schema,
        table=table,
        workload=Workload(queries),
        min_block_size=n,
    )
