"""Benchmark workload generators (paper Sec. 7.2)."""

from . import errorlog, microbench, query_gen, tpch
from .base import Dataset
from .errorlog import errorlog_ext_dataset, errorlog_int_dataset
from .microbench import disjunctive_dataset, overlap_dataset
from .tpch import tpch_dataset

__all__ = [
    "Dataset",
    "disjunctive_dataset",
    "errorlog",
    "errorlog_ext_dataset",
    "errorlog_int_dataset",
    "microbench",
    "query_gen",
    "overlap_dataset",
    "tpch",
    "tpch_dataset",
]
