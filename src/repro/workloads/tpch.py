"""A denormalized TPC-H-like table and its 15 query templates.

Paper Sec. 7.2 evaluates on TPC-H SF1000, denormalized so that one wide
lineitem-centric table carries the filters of every template touching
the fact table, restricted to a one-month ingest partition (77M rows,
68 columns).  This generator reproduces that setup at laptop scale:

* the columns actually referenced by the 15 templates (q1, q3, q4, q5,
  q6, q7, q8, q9, q10, q12, q14, q17, q18, q19, q21) are generated with
  TPC-H-spec value distributions (uniform dates, discrete quantities
  and discounts, the standard categorical domains, consistent
  nation -> region joins);
* dates live in a single ingest window (the "month partition"); query
  date ranges are drawn TPC-H-style over a wider span, so — exactly as
  in the paper — some template instances cover the whole partition
  (q1, q18) and some miss it entirely;
* the paper's three advanced cuts are included: AC0
  ``c_nationkey = s_nationkey``, AC1 ``l_shipdate < l_commitdate``,
  AC2 ``l_commitdate < l_receiptdate`` (Sec. 6.1).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.predicates import (
    AdvancedCut,
    column_eq,
    column_ge,
    column_gt,
    column_in,
    column_le,
    column_lt,
    conjunction,
    disjunction,
)
from ..core.workload import Query, Workload
from ..storage.schema import Schema, categorical, numeric
from ..storage.table import Table
from .base import Dataset

__all__ = [
    "TPCH_TEMPLATES",
    "advanced_cuts",
    "generate_table",
    "generate_workload",
    "tpch_dataset",
    "NATIONS",
    "REGIONS",
]

# ----------------------------------------------------------------------
# Reference data (TPC-H Appendix values, abridged where the spec lists
# hundreds of combinations)
# ----------------------------------------------------------------------

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

#: nation -> region assignment follows the TPC-H nation table.
NATIONS = [
    ("ALGERIA", "AFRICA"),
    ("ARGENTINA", "AMERICA"),
    ("BRAZIL", "AMERICA"),
    ("CANADA", "AMERICA"),
    ("EGYPT", "MIDDLE EAST"),
    ("ETHIOPIA", "AFRICA"),
    ("FRANCE", "EUROPE"),
    ("GERMANY", "EUROPE"),
    ("INDIA", "ASIA"),
    ("INDONESIA", "ASIA"),
    ("IRAN", "MIDDLE EAST"),
    ("IRAQ", "MIDDLE EAST"),
    ("JAPAN", "ASIA"),
    ("JORDAN", "MIDDLE EAST"),
    ("KENYA", "AFRICA"),
    ("MOROCCO", "AFRICA"),
    ("MOZAMBIQUE", "AFRICA"),
    ("PERU", "AMERICA"),
    ("CHINA", "ASIA"),
    ("ROMANIA", "EUROPE"),
    ("SAUDI ARABIA", "MIDDLE EAST"),
    ("VIETNAM", "ASIA"),
    ("RUSSIA", "EUROPE"),
    ("UNITED KINGDOM", "EUROPE"),
    ("UNITED STATES", "AMERICA"),
]

SHIPMODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
SHIPINSTRUCTS = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]
RETURNFLAGS = ["R", "A", "N"]
LINESTATUSES = ["O", "F"]
ORDERPRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
MKTSEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
BRANDS = [f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6)]
_CONTAINER_SIZES = ["SM", "LG", "MED", "JUMBO", "WRAP"]
_CONTAINER_KINDS = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"]
CONTAINERS = [f"{s} {k}" for s in _CONTAINER_SIZES for k in _CONTAINER_KINDS]
_TYPE_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
_TYPE_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPES = [f"{a} {b}" for a in _TYPE_1 for b in _TYPE_2]

#: The ingest ("month") partition window, in integer days.
WINDOW_DAYS = 120


def build_schema() -> Schema:
    """The denormalized lineitem-centric schema."""
    return Schema(
        [
            numeric("l_quantity", (1, 51)),
            numeric("l_extendedprice", (900.0, 105000.0)),
            numeric("l_discount", (0.0, 0.11)),
            numeric("l_tax", (0.0, 0.09)),
            numeric("l_shipdate", (0, WINDOW_DAYS)),
            numeric("l_commitdate", (-40, WINDOW_DAYS + 70)),
            numeric("l_receiptdate", (0, WINDOW_DAYS + 31)),
            numeric("o_orderdate", (-130, WINDOW_DAYS)),
            numeric("o_totalprice", (1000.0, 500000.0)),
            numeric("p_size", (1, 51)),
            numeric("p_retailprice", (900.0, 2100.0)),
            numeric("c_acctbal", (-1000.0, 10000.0)),
            numeric("c_nationkey", (0, 25)),
            numeric("s_nationkey", (0, 25)),
            categorical("l_returnflag", RETURNFLAGS),
            categorical("l_linestatus", LINESTATUSES),
            categorical("l_shipmode", SHIPMODES),
            categorical("l_shipinstruct", SHIPINSTRUCTS),
            categorical("p_brand", BRANDS),
            categorical("p_container", CONTAINERS),
            categorical("p_type", TYPES),
            categorical("o_orderpriority", ORDERPRIORITIES),
            categorical("c_mktsegment", MKTSEGMENTS),
            categorical("cn_name", [n for n, _ in NATIONS]),
            categorical("sn_name", [n for n, _ in NATIONS]),
            categorical("cr_name", REGIONS),
            categorical("sr_name", REGIONS),
        ]
    )


def generate_table(num_rows: int = 200_000, seed: int = 0) -> Table:
    """Generate the denormalized month-partition table."""
    rng = np.random.default_rng(seed)
    schema = build_schema()
    n = num_rows

    shipdate = rng.integers(0, WINDOW_DAYS, n).astype(np.float64)
    commit_offset = rng.integers(-40, 61, n).astype(np.float64)
    receipt_offset = rng.integers(1, 31, n).astype(np.float64)
    order_offset = rng.integers(1, 122, n).astype(np.float64)

    c_nation = rng.integers(0, len(NATIONS), n)
    s_nation = rng.integers(0, len(NATIONS), n)
    nation_region = np.array(
        [REGIONS.index(region) for _, region in NATIONS], dtype=np.int64
    )

    columns: Dict[str, np.ndarray] = {
        "l_quantity": rng.integers(1, 51, n).astype(np.float64),
        "l_extendedprice": rng.uniform(900.0, 105000.0, n),
        "l_discount": rng.integers(0, 11, n).astype(np.float64) / 100.0,
        "l_tax": rng.integers(0, 9, n).astype(np.float64) / 100.0,
        "l_shipdate": shipdate,
        "l_commitdate": shipdate + commit_offset,
        "l_receiptdate": shipdate + receipt_offset,
        "o_orderdate": shipdate - order_offset,
        "o_totalprice": rng.uniform(1000.0, 500000.0, n),
        "p_size": rng.integers(1, 51, n).astype(np.float64),
        "p_retailprice": rng.uniform(900.0, 2100.0, n),
        "c_acctbal": rng.uniform(-1000.0, 10000.0, n),
        "c_nationkey": c_nation.astype(np.float64),
        "s_nationkey": s_nation.astype(np.float64),
        "l_returnflag": rng.integers(0, len(RETURNFLAGS), n),
        "l_linestatus": rng.integers(0, len(LINESTATUSES), n),
        "l_shipmode": rng.integers(0, len(SHIPMODES), n),
        "l_shipinstruct": rng.integers(0, len(SHIPINSTRUCTS), n),
        "p_brand": rng.integers(0, len(BRANDS), n),
        "p_container": rng.integers(0, len(CONTAINERS), n),
        "p_type": rng.integers(0, len(TYPES), n),
        "o_orderpriority": rng.integers(0, len(ORDERPRIORITIES), n),
        "c_mktsegment": rng.integers(0, len(MKTSEGMENTS), n),
        # Denormalized join columns stay consistent with the keys.
        "cn_name": c_nation,
        "sn_name": s_nation,
        "cr_name": nation_region[c_nation],
        "sr_name": nation_region[s_nation],
    }
    return Table(schema, columns)


# ----------------------------------------------------------------------
# Advanced cuts (paper Sec. 6.1's three TPC-H examples)
# ----------------------------------------------------------------------


def _ac0_eval(columns: Dict[str, np.ndarray]) -> np.ndarray:
    return columns["c_nationkey"] == columns["s_nationkey"]


def _ac1_eval(columns: Dict[str, np.ndarray]) -> np.ndarray:
    return columns["l_shipdate"] < columns["l_commitdate"]


def _ac2_eval(columns: Dict[str, np.ndarray]) -> np.ndarray:
    return columns["l_commitdate"] < columns["l_receiptdate"]


def advanced_cuts() -> Tuple[AdvancedCut, AdvancedCut, AdvancedCut]:
    """AC0, AC1, AC2 exactly as listed in the paper."""
    ac0 = AdvancedCut(
        "c_nationkey = s_nationkey", 0, _ac0_eval, ("c_nationkey", "s_nationkey")
    )
    ac1 = AdvancedCut(
        "l_shipdate < l_commitdate", 1, _ac1_eval, ("l_shipdate", "l_commitdate")
    )
    ac2 = AdvancedCut(
        "l_commitdate < l_receiptdate",
        2,
        _ac2_eval,
        ("l_commitdate", "l_receiptdate"),
    )
    return ac0, ac1, ac2


# ----------------------------------------------------------------------
# Templates
# ----------------------------------------------------------------------


class _TemplateContext:
    """Helpers shared by template generators."""

    def __init__(self, schema: Schema, rng: np.random.Generator) -> None:
        self.schema = schema
        self.rng = rng
        self.ac0, self.ac1, self.ac2 = advanced_cuts()

    def enc(self, column: str, value: object) -> float:
        return self.schema.encode_literal(column, value)

    def choice(self, values: Sequence[object]) -> object:
        return values[int(self.rng.integers(0, len(values)))]

    def date_start(self, lo: int = -460, hi: int = 280) -> int:
        """A TPC-H-style date literal drawn over a span much wider
        than the ingest window, so a realistic fraction of template
        instances miss the partition entirely (the paper draws dates
        over the full 1992-1998 range while the data covers one
        month)."""
        return int(self.rng.integers(lo, hi))


def _q1(ctx: _TemplateContext) -> Query:
    # Pricing summary: l_shipdate <= ship-window end minus delta.
    delta = int(ctx.rng.integers(0, 30))
    pred = column_le("l_shipdate", WINDOW_DAYS - delta)
    return Query(
        pred,
        template="q1",
        columns=(
            "l_shipdate",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_tax",
            "l_returnflag",
            "l_linestatus",
        ),
    )


def _q3(ctx: _TemplateContext) -> Query:
    segment = ctx.choice(MKTSEGMENTS)
    date = ctx.date_start(-300, 300)
    pred = conjunction(
        [
            column_eq("c_mktsegment", ctx.enc("c_mktsegment", segment)),
            column_lt("o_orderdate", date),
            column_gt("l_shipdate", date),
        ]
    )
    return Query(
        pred,
        template="q3",
        columns=("c_mktsegment", "o_orderdate", "l_shipdate", "l_extendedprice"),
    )


def _q4(ctx: _TemplateContext) -> Query:
    date = ctx.date_start()
    pred = conjunction(
        [
            column_ge("o_orderdate", date),
            column_lt("o_orderdate", date + 90),
            ctx.ac2,
        ]
    )
    return Query(
        pred,
        template="q4",
        columns=("o_orderdate", "l_commitdate", "l_receiptdate", "o_orderpriority"),
    )


def _q5(ctx: _TemplateContext) -> Query:
    region = ctx.choice(REGIONS)
    date = ctx.date_start(-950, 360)
    pred = conjunction(
        [
            column_eq("sr_name", ctx.enc("sr_name", region)),
            column_ge("o_orderdate", date),
            column_lt("o_orderdate", date + 365),
            ctx.ac0,
        ]
    )
    return Query(
        pred,
        template="q5",
        columns=(
            "sr_name",
            "o_orderdate",
            "c_nationkey",
            "s_nationkey",
            "l_extendedprice",
            "l_discount",
        ),
    )


def _q6(ctx: _TemplateContext) -> Query:
    date = ctx.date_start(-800, 300)
    discount = int(ctx.rng.integers(2, 10)) / 100.0
    quantity = int(ctx.rng.integers(24, 26))
    pred = conjunction(
        [
            column_ge("l_shipdate", date),
            column_lt("l_shipdate", date + 365),
            column_ge("l_discount", discount - 0.01),
            column_le("l_discount", discount + 0.01),
            column_lt("l_quantity", quantity),
        ]
    )
    return Query(
        pred,
        template="q6",
        columns=("l_shipdate", "l_discount", "l_quantity", "l_extendedprice"),
    )


def _q7(ctx: _TemplateContext) -> Query:
    names = [n for n, _ in NATIONS]
    i, j = ctx.rng.choice(len(names), size=2, replace=False)
    nation1, nation2 = names[int(i)], names[int(j)]
    date = ctx.date_start(-1400, 450)
    pred = conjunction(
        [
            disjunction(
                [
                    conjunction(
                        [
                            column_eq("cn_name", ctx.enc("cn_name", nation1)),
                            column_eq("sn_name", ctx.enc("sn_name", nation2)),
                        ]
                    ),
                    conjunction(
                        [
                            column_eq("cn_name", ctx.enc("cn_name", nation2)),
                            column_eq("sn_name", ctx.enc("sn_name", nation1)),
                        ]
                    ),
                ]
            ),
            column_ge("l_shipdate", date),
            column_le("l_shipdate", date + 730),
        ]
    )
    return Query(
        pred,
        template="q7",
        columns=("cn_name", "sn_name", "l_shipdate", "l_extendedprice", "l_discount"),
    )


def _q8(ctx: _TemplateContext) -> Query:
    region = ctx.choice(REGIONS)
    ptype = ctx.choice(TYPES)
    date = ctx.date_start(-1600, 500)
    pred = conjunction(
        [
            column_eq("cr_name", ctx.enc("cr_name", region)),
            column_ge("o_orderdate", date),
            column_le("o_orderdate", date + 730),
            column_eq("p_type", ctx.enc("p_type", ptype)),
        ]
    )
    return Query(
        pred,
        template="q8",
        columns=("cr_name", "o_orderdate", "p_type", "l_extendedprice", "l_discount"),
    )


def _q9(ctx: _TemplateContext) -> Query:
    ptype = ctx.choice(TYPES)
    pred = column_eq("p_type", ctx.enc("p_type", ptype))
    return Query(
        pred,
        template="q9",
        columns=("p_type", "sn_name", "o_orderdate", "l_extendedprice", "l_quantity"),
    )


def _q10(ctx: _TemplateContext) -> Query:
    date = ctx.date_start()
    pred = conjunction(
        [
            column_ge("o_orderdate", date),
            column_lt("o_orderdate", date + 90),
            column_eq("l_returnflag", ctx.enc("l_returnflag", "R")),
        ]
    )
    return Query(
        pred,
        template="q10",
        columns=("o_orderdate", "l_returnflag", "l_extendedprice", "c_acctbal"),
    )


def _q12(ctx: _TemplateContext) -> Query:
    modes = ctx.rng.choice(len(SHIPMODES), size=2, replace=False)
    date = ctx.date_start(-850, 320)
    pred = conjunction(
        [
            column_in(
                "l_shipmode",
                [ctx.enc("l_shipmode", SHIPMODES[int(m)]) for m in modes],
            ),
            ctx.ac1,
            ctx.ac2,
            column_ge("l_receiptdate", date),
            column_lt("l_receiptdate", date + 365),
        ]
    )
    return Query(
        pred,
        template="q12",
        columns=(
            "l_shipmode",
            "l_shipdate",
            "l_commitdate",
            "l_receiptdate",
            "o_orderpriority",
        ),
    )


def _q14(ctx: _TemplateContext) -> Query:
    date = ctx.date_start(-220, 160)
    pred = conjunction(
        [column_ge("l_shipdate", date), column_lt("l_shipdate", date + 30)]
    )
    return Query(
        pred,
        template="q14",
        columns=("l_shipdate", "p_type", "l_extendedprice", "l_discount"),
    )


def _q17(ctx: _TemplateContext) -> Query:
    brand = ctx.choice(BRANDS)
    container = ctx.choice(CONTAINERS)
    pred = conjunction(
        [
            column_eq("p_brand", ctx.enc("p_brand", brand)),
            column_eq("p_container", ctx.enc("p_container", container)),
        ]
    )
    return Query(
        pred,
        template="q17",
        columns=("p_brand", "p_container", "l_quantity", "l_extendedprice"),
    )


def _q18(ctx: _TemplateContext) -> Query:
    # The pushed-down filter of q18 is nearly vacuous (the real
    # predicate is a HAVING over grouped quantities): scans the month.
    quantity = int(ctx.rng.integers(2, 8))
    pred = column_gt("l_quantity", quantity)
    return Query(
        pred,
        template="q18",
        columns=("l_quantity", "o_totalprice", "o_orderdate"),
    )


def _q19(ctx: _TemplateContext) -> Query:
    air_modes = [ctx.enc("l_shipmode", "AIR"), ctx.enc("l_shipmode", "REG AIR")]
    deliver = ctx.enc("l_shipinstruct", "DELIVER IN PERSON")
    sm = [c for c in CONTAINERS if c.startswith("SM ")][:4]
    med = [c for c in CONTAINERS if c.startswith("MED ")][:4]
    lg = [c for c in CONTAINERS if c.startswith("LG ")][:4]
    branches = []
    for containers, size_hi, qty_lo in (
        (sm, 5, int(ctx.rng.integers(1, 11))),
        (med, 10, int(ctx.rng.integers(10, 21))),
        (lg, 15, int(ctx.rng.integers(20, 31))),
    ):
        brand = ctx.choice(BRANDS)
        branches.append(
            conjunction(
                [
                    column_eq("p_brand", ctx.enc("p_brand", brand)),
                    column_in(
                        "p_container",
                        [ctx.enc("p_container", c) for c in containers],
                    ),
                    column_ge("l_quantity", qty_lo),
                    column_le("l_quantity", qty_lo + 10),
                    column_ge("p_size", 1),
                    column_le("p_size", size_hi),
                    column_in("l_shipmode", air_modes),
                    column_eq("l_shipinstruct", deliver),
                ]
            )
        )
    return Query(
        disjunction(branches),
        template="q19",
        columns=(
            "p_brand",
            "p_container",
            "l_quantity",
            "p_size",
            "l_shipmode",
            "l_shipinstruct",
            "l_extendedprice",
        ),
    )


def _q21(ctx: _TemplateContext) -> Query:
    nation = ctx.choice([n for n, _ in NATIONS])
    pred = conjunction(
        [
            column_eq("sn_name", ctx.enc("sn_name", nation)),
            ctx.ac2,  # l_receiptdate > l_commitdate
        ]
    )
    return Query(
        pred,
        template="q21",
        columns=("sn_name", "l_commitdate", "l_receiptdate", "o_orderdate"),
    )


TPCH_TEMPLATES: Dict[str, Callable[[_TemplateContext], Query]] = {
    "q1": _q1,
    "q3": _q3,
    "q4": _q4,
    "q5": _q5,
    "q6": _q6,
    "q7": _q7,
    "q8": _q8,
    "q9": _q9,
    "q10": _q10,
    "q12": _q12,
    "q14": _q14,
    "q17": _q17,
    "q18": _q18,
    "q19": _q19,
    "q21": _q21,
}


def generate_workload(
    schema: Schema,
    seeds_per_template: int = 10,
    seed: int = 1,
    templates: Optional[Sequence[str]] = None,
) -> Workload:
    """``seeds_per_template`` random instances of each template."""
    rng = np.random.default_rng(seed)
    ctx = _TemplateContext(schema, rng)
    wanted = templates if templates is not None else list(TPCH_TEMPLATES)
    queries: List[Query] = []
    for template in wanted:
        make = TPCH_TEMPLATES[template]
        for k in range(seeds_per_template):
            query = make(ctx)
            queries.append(
                Query(
                    predicate=query.predicate,
                    name=f"{template}#{k}",
                    template=template,
                    columns=query.columns,
                )
            )
    return Workload(queries)


def tpch_dataset(
    num_rows: int = 200_000,
    seeds_per_template: int = 10,
    seed: int = 0,
    test_seeds_per_template: int = 0,
) -> Dataset:
    """The full TPC-H benchmark setup (table + 150-query workload).

    ``min_block_size`` scales the paper's b = 100K @ 77M rows to the
    generated row count.  ``test_seeds_per_template`` > 0 additionally
    generates the held-out workload of the robustness experiment
    (Sec. 7.4.1; the paper uses 10x more seeds).
    """
    table = generate_table(num_rows, seed=seed)
    workload = generate_workload(
        table.schema, seeds_per_template=seeds_per_template, seed=seed + 1
    )
    test_workload = None
    if test_seeds_per_template > 0:
        test_workload = generate_workload(
            table.schema,
            seeds_per_template=test_seeds_per_template,
            seed=seed + 20_001,
        )
    min_block = max(1, round(num_rows * 100_000 / 77_000_000))
    return Dataset(
        name="tpch",
        schema=table.schema,
        table=table,
        workload=workload,
        min_block_size=min_block,
        test_workload=test_workload,
    )
