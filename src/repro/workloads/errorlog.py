"""Synthetic ErrorLog-Int / ErrorLog-Ext workloads (paper Sec. 7.2).

The paper's two real datasets are proprietary Microsoft crash-dump
logs; these generators reproduce their *published characteristics* so
the same code paths and result shapes are exercised:

ErrorLog-Int
    ~1 week of kernel crash reports: 50 columns, categorical event
    type with 8 distinct values, OS build date, OS version string,
    client ingest date, entry validity.  1000 queries over 5
    dimensions (IN over categoricals, date ranges, LIKE/equality over
    version strings) with overall selectivity ~0.0005% — individual
    queries return under ~100 rows.

ErrorLog-Ext
    15 days of external crash logs: 58 columns, a ~3600-value
    categorical application domain, selectivity ~0.0697%.

Both datasets carry strong cross-column correlations (event types
concentrate on version buckets; versions follow build dates) — the
structure the paper credits for Woodblock's 30-second convergence —
and an ingest-time column used by the Range baseline, which the
workload's predicates ignore (hence the baseline's 100% access).

Queries are *sampled from the data*: each query pins a random seed row
and constrains 3-5 dimensions around that row's values, guaranteeing
non-empty but tiny answer sets.  Literals are drawn from bounded pools
so the candidate-cut count stays in the paper's "hundreds to low
thousands" range.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..core.predicates import (
    Predicate,
    column_eq,
    column_ge,
    column_in,
    column_le,
    conjunction,
)
from ..core.workload import Query, Workload
from ..storage.schema import Schema, categorical, numeric
from ..storage.table import Table
from .base import Dataset

__all__ = ["errorlog_int_dataset", "errorlog_ext_dataset"]

_EVENT_TYPES = [
    "DEVICE_CRASH",
    "LIVE_KERNEL_EVENT",
    "APP_HANG",
    "APP_CRASH",
    "DRIVER_FAULT",
    "WATCHDOG_TIMEOUT",
    "MEMORY_CORRUPTION",
    "SERVICE_FAILURE",
]


def _version_strings(count: int) -> List[str]:
    """Plausible OS build version strings, ordered by build."""
    return [f"10.0.{19000 + 7 * i}.{(i * 37) % 1000}" for i in range(count)]


def _filler_columns(
    prefix: str, count: int, num_rows: int, rng: np.random.Generator
) -> Tuple[List[object], Dict[str, np.ndarray]]:
    """Columns present in the schema but never filtered (telemetry
    payload fields).  Alternates numeric and small categoricals."""
    schema_cols: List[object] = []
    data: Dict[str, np.ndarray] = {}
    for i in range(count):
        name = f"{prefix}{i:02d}"
        if i % 3 == 2:
            values = [f"{prefix}v{j}" for j in range(6)]
            schema_cols.append(categorical(name, values))
            data[name] = rng.integers(0, len(values), num_rows)
        else:
            schema_cols.append(numeric(name, (0.0, 1000.0)))
            data[name] = rng.uniform(0.0, 1000.0, num_rows)
    return schema_cols, data


#: Distinct "reporting bucket" values (device cohort); the Int
#: workload's high-selectivity equality dimension.  Kept well below
#: typical block sizes so that workload-oblivious blocks contain every
#: bucket and their block dictionaries cannot prune by luck (at the
#: paper's 100M-row scale every block saturates its dictionaries).
_INT_NUM_BUCKETS = 400


def _build_int_table(num_rows: int, rng: np.random.Generator) -> Table:
    num_versions = 60
    versions = _version_strings(num_versions)
    # Build dates: each version occupies a contiguous build-date band.
    version_idx = rng.integers(0, num_versions, num_rows)
    build_date = version_idx * 25 + rng.integers(0, 25, num_rows)
    # Event types concentrate per version bucket (correlation).
    bucket = version_idx // 10  # 6 buckets
    event_type = np.empty(num_rows, dtype=np.int64)
    for b in range(6):
        rows = np.flatnonzero(bucket == b)
        favored = (2 * b) % len(_EVENT_TYPES)
        probs = np.full(len(_EVENT_TYPES), 0.2 / (len(_EVENT_TYPES) - 2))
        probs[favored] = 0.5
        probs[(favored + 1) % len(_EVENT_TYPES)] = 0.3
        event_type[rows] = rng.choice(len(_EVENT_TYPES), size=len(rows), p=probs)
    # Ingest time: pure arrival order, uncorrelated with any queried
    # dimension — the deployed range-on-ingest baseline can therefore
    # skip nothing (paper: Baseline accesses 100%).
    ingest_date = rng.uniform(0.0, 7.0, num_rows)  # one week
    is_valid = (rng.random(num_rows) < 0.9).astype(np.int64)
    # Reporting cohort, correlated with version (device fleets update
    # together): the needle-in-haystack dimension.
    report_bucket = (
        version_idx * (_INT_NUM_BUCKETS // num_versions)
        + rng.integers(0, _INT_NUM_BUCKETS // num_versions, num_rows)
    )

    fill_schema, fill_data = _filler_columns("payload", 44, num_rows, rng)
    schema = Schema(
        [
            categorical("event_type", _EVENT_TYPES),
            categorical("os_version", versions),
            numeric("os_build_date", (0.0, num_versions * 25.0)),
            numeric("ingest_date", (0.0, 7.0)),
            categorical("is_valid", [0, 1]),
            categorical(
                "report_bucket", [f"bucket-{i:04d}" for i in range(_INT_NUM_BUCKETS)]
            ),
        ]
        + fill_schema
    )
    data: Dict[str, np.ndarray] = {
        "event_type": event_type,
        "os_version": version_idx,
        "os_build_date": build_date.astype(np.float64),
        "ingest_date": ingest_date,
        "is_valid": is_valid,
        "report_bucket": report_bucket,
    }
    data.update(fill_data)
    return Table(schema, data)


def _int_queries(
    table: Table, num_queries: int, rng: np.random.Generator
) -> Workload:
    """Seed-row-anchored queries over the 5 ErrorLog-Int dimensions."""
    n = table.num_rows
    seed_rows = rng.choice(n, size=min(48, n), replace=False)
    event = table.column("event_type")
    version = table.column("os_version")
    build = table.column("os_build_date")
    valid = table.column("is_valid")
    report = table.column("report_bucket")
    num_events = len(_EVENT_TYPES)
    queries: List[Query] = []
    for qi in range(num_queries):
        row = int(seed_rows[qi % len(seed_rows)])
        parts: List[Predicate] = []
        # IN over the categorical event type (always present).
        extra = int(rng.integers(0, 2))
        event_values = {int(event[row])}
        while len(event_values) < 1 + extra:
            event_values.add(int(rng.integers(0, num_events)))
        parts.append(column_in("event_type", sorted(event_values)))
        # Equality over the version string (the paper's LIKE/equality
        # over strings; dictionary-encoded LIKE compiles to IN).
        if qi % 3 != 0:
            parts.append(column_eq("os_version", int(version[row])))
        else:
            # A "prefix LIKE": the whole version bucket.
            bucket = int(version[row]) // 10
            parts.append(
                column_in("os_version", list(range(bucket * 10, bucket * 10 + 10)))
            )
        # Build-date range around the seed row.
        half_width = float(rng.choice([12.0, 25.0, 50.0]))
        parts.append(column_ge("os_build_date", float(build[row]) - half_width))
        parts.append(column_le("os_build_date", float(build[row]) + half_width))
        # Reporting-cohort equality: the needle dimension.  Note no
        # query filters ingest time, so the deployed range-on-ingest
        # partitioning cannot skip (paper: Baseline = 100%).
        if qi % 5 != 4:
            parts.append(column_eq("report_bucket", int(report[row])))
        # Validity equality on most queries.
        if qi % 4 != 0:
            parts.append(column_eq("is_valid", int(valid[row])))
        queries.append(
            Query(
                conjunction(parts),
                name=f"errlog-int-{qi}",
                template="errorlog-int",
                columns=(
                    "event_type",
                    "os_version",
                    "os_build_date",
                    "report_bucket",
                    "is_valid",
                ),
            )
        )
    return Workload(queries)


def errorlog_int_dataset(
    num_rows: int = 120_000, num_queries: int = 1000, seed: int = 0
) -> Dataset:
    """ErrorLog-Int at laptop scale (see module docstring)."""
    rng = np.random.default_rng(seed)
    table = _build_int_table(num_rows, rng)
    workload = _int_queries(table, num_queries, rng)
    # Paper: b = 50K at ~100M rows.
    min_block = max(1, round(num_rows * 50_000 / 100_000_000))
    return Dataset(
        name="errorlog-int",
        schema=table.schema,
        table=table,
        workload=workload,
        min_block_size=min_block,
    )


# ----------------------------------------------------------------------
# ErrorLog-Ext
# ----------------------------------------------------------------------


def _build_ext_table(
    num_rows: int, num_apps: int, rng: np.random.Generator
) -> Table:
    apps = [f"app-{i:04d}" for i in range(num_apps)]
    countries = [f"country-{i:03d}" for i in range(100)]
    # Zipf-ish app popularity: a few apps dominate crash volume.
    ranks = np.arange(1, num_apps + 1, dtype=np.float64)
    probs = 1.0 / ranks
    probs /= probs.sum()
    app = rng.choice(num_apps, size=num_rows, p=probs)
    # Crash dates over 15 days; apps release in waves, so crash date
    # correlates with app id bucket.
    base_day = (app % 15).astype(np.float64)
    crash_date = np.clip(base_day + rng.normal(0.0, 2.0, num_rows), 0.0, 15.0)
    country = rng.integers(0, len(countries), num_rows)
    severity = rng.integers(0, 5, num_rows)
    module = (app * 7 + rng.integers(0, 3, num_rows)) % 600  # correlated

    fill_schema, fill_data = _filler_columns("telemetry", 51, num_rows, rng)
    schema = Schema(
        [
            categorical("app_id", apps),
            categorical("country", countries),
            numeric("crash_date", (0.0, 15.0)),
            numeric("severity", (0, 5)),
            numeric("module_id", (0, 600)),
            numeric("ingest_date", (0.0, 15.0)),
            categorical("channel", ["stable", "beta", "dev"]),
        ]
        + fill_schema
    )
    data: Dict[str, np.ndarray] = {
        "app_id": app,
        "country": country,
        "crash_date": crash_date,
        "severity": severity.astype(np.float64),
        "module_id": module.astype(np.float64),
        # Ingestion order is decoupled from crash time (reports arrive
        # via many pipelines), so range-on-ingest skips nothing.
        "ingest_date": rng.uniform(0.0, 15.0, num_rows),
        "channel": rng.choice(3, size=num_rows, p=[0.8, 0.15, 0.05]),
    }
    data.update(fill_data)
    return Table(schema, data)


def _ext_queries(
    table: Table, num_queries: int, num_apps: int, rng: np.random.Generator
) -> Workload:
    n = table.num_rows
    seed_rows = rng.choice(n, size=min(64, n), replace=False)
    app = table.column("app_id")
    country = table.column("country")
    crash = table.column("crash_date")
    severity = table.column("severity")
    queries: List[Query] = []
    for qi in range(num_queries):
        row = int(seed_rows[qi % len(seed_rows)])
        parts: List[Predicate] = []
        # IN over the large categorical app domain (1-4 apps).
        apps = {int(app[row])}
        for _ in range(int(rng.integers(0, 4))):
            apps.add(int(rng.integers(0, num_apps)))
        parts.append(column_in("app_id", sorted(apps)))
        # Crash-date range (hours to days).
        width = float(rng.choice([0.5, 1.0, 3.0]))
        lo = max(0.0, float(crash[row]) - width)
        parts.append(column_ge("crash_date", lo))
        parts.append(column_le("crash_date", lo + 2 * width))
        if qi % 2 == 0:
            parts.append(column_eq("country", int(country[row])))
        if qi % 5 == 0:
            parts.append(column_ge("severity", float(severity[row])))
        queries.append(
            Query(
                conjunction(parts),
                name=f"errlog-ext-{qi}",
                template="errorlog-ext",
                columns=("app_id", "country", "crash_date", "severity"),
            )
        )
    return Workload(queries)


def errorlog_ext_dataset(
    num_rows: int = 120_000,
    num_queries: int = 1000,
    num_apps: int = 3600,
    seed: int = 0,
) -> Dataset:
    """ErrorLog-Ext at laptop scale (see module docstring)."""
    rng = np.random.default_rng(seed)
    table = _build_ext_table(num_rows, num_apps, rng)
    workload = _ext_queries(table, num_queries, num_apps, rng)
    # Paper: b = 50K at ~81M rows.
    min_block = max(1, round(num_rows * 50_000 / 81_000_000))
    return Dataset(
        name="errorlog-ext",
        schema=table.schema,
        table=table,
        workload=workload,
        min_block_size=min_block,
    )
