"""Generic workload generation over arbitrary schemas.

Utilities for building synthetic workloads when you are not using one
of the paper's benchmark generators: random range / point / IN / hybrid
queries, data-anchored needle queries (guaranteed non-empty), and a
small template mechanism for "same structure, fresh literals" workloads
(the pattern behind the paper's TPC-H templates and the Sec. 7.4.1
robustness experiment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from ..core.predicates import (
    Predicate,
    column_ge,
    column_in,
    column_le,
    conjunction,
)
from ..core.workload import Query, Workload
from ..storage.schema import Schema
from ..storage.table import Table

__all__ = [
    "random_range_query",
    "random_in_query",
    "anchored_query",
    "QueryTemplate",
    "generate_workload",
]


def random_range_query(
    schema: Schema,
    column: str,
    rng: np.random.Generator,
    selectivity: float = 0.1,
    name: str = "",
) -> Query:
    """A range predicate over a numeric column covering roughly
    ``selectivity`` of its domain."""
    col = schema[column]
    if not col.is_numeric or col.domain is None:
        raise ValueError(f"{column!r} must be numeric with a domain")
    lo, hi = col.domain
    width = (hi - lo) * min(max(selectivity, 0.0), 1.0)
    start = rng.uniform(lo, max(hi - width, lo))
    pred = conjunction(
        [column_ge(column, start), column_le(column, start + width)]
    )
    return Query(pred, name=name or f"range-{column}", template=f"range-{column}")


def random_in_query(
    schema: Schema,
    column: str,
    rng: np.random.Generator,
    num_values: int = 2,
    name: str = "",
) -> Query:
    """An ``IN`` predicate over a categorical column."""
    col = schema[column]
    if not col.is_categorical:
        raise ValueError(f"{column!r} must be categorical")
    dom = col.domain_size
    k = min(max(num_values, 1), dom)
    codes = rng.choice(dom, size=k, replace=False)
    pred = column_in(column, sorted(int(c) for c in codes))
    return Query(pred, name=name or f"in-{column}", template=f"in-{column}")


def anchored_query(
    table: Table,
    columns: Sequence[str],
    rng: np.random.Generator,
    numeric_half_width: float = 0.02,
    name: str = "",
) -> Query:
    """A needle query anchored at a random row (always non-empty).

    Numeric columns get a +-``numeric_half_width``-of-domain range
    around the row's value; categorical columns get an equality.
    """
    if table.num_rows == 0:
        raise ValueError("cannot anchor a query in an empty table")
    row = int(rng.integers(0, table.num_rows))
    parts: List[Predicate] = []
    for column in columns:
        col = table.schema[column]
        value = float(table.column(column)[row])
        if col.is_categorical:
            parts.append(column_in(column, [int(value)]))
        else:
            if col.domain is not None:
                span = (col.domain[1] - col.domain[0]) * numeric_half_width
            else:
                span = max(abs(value) * numeric_half_width, 1e-9)
            parts.append(column_ge(column, value - span))
            parts.append(column_le(column, value + span))
    return Query(
        conjunction(parts), name=name or f"needle@{row}", template="needle"
    )


@dataclass
class QueryTemplate:
    """A named query generator: same structure, fresh literals."""

    name: str
    make: Callable[[np.random.Generator], Query]

    def instantiate(self, rng: np.random.Generator, instance: int) -> Query:
        query = self.make(rng)
        return Query(
            predicate=query.predicate,
            name=f"{self.name}#{instance}",
            template=self.name,
            columns=query.columns,
        )


def generate_workload(
    templates: Sequence[QueryTemplate],
    instances_per_template: int,
    seed: int = 0,
) -> Workload:
    """Instantiate every template ``instances_per_template`` times."""
    rng = np.random.default_rng(seed)
    queries: List[Query] = []
    for template in templates:
        for i in range(instances_per_template):
            queries.append(template.instantiate(rng, i))
    return Workload(queries)
