"""repro — a full reproduction of "Qd-tree: Learning Data Layouts for
Big Data Analytics" (Yang et al., SIGMOD 2020).

The package implements the qd-tree data structure, its greedy and deep
reinforcement-learning (Woodblock) construction algorithms, the
block-based columnar storage and scan-engine substrates the paper's
experiments run on, every baseline the paper compares against, and the
three evaluation workloads.

Subpackages
-----------
``repro.db``
    The unified :class:`~repro.db.Database` facade: tables, layouts
    built through a pluggable string-keyed strategy registry,
    monotonically increasing layout generations, persistence, serving
    and a generation-keyed result cache with automatic invalidation
    on ingest/layout swap.
``repro.core``
    Qd-tree, predicates, cost model, greedy construction, routers,
    overlap/replication extensions.
``repro.rl``
    Woodblock: the PPO agent that learns to construct qd-trees.
``repro.sql``
    A small SQL WHERE-clause planner for candidate-cut extraction.
``repro.storage``
    Dictionary-encoded tables, columnar blocks, min-max indexes.
``repro.engine``
    Scan-oriented execution engine with pluggable cost profiles.
``repro.exec``
    The unified query pipeline: plan/route/result-cache/prune/scan/
    merge stages over an explicit execution context; every execution
    path is a thin configuration of it.
``repro.serve``
    Concurrent query serving: thread-pool scheduling, buffer-pool
    caching, routing memoization, latency/throughput metrics,
    sharded scatter-gather and cost-arbitrated multi-layout facades.
``repro.baselines``
    Random, range, Bottom-Up (Sun et al.) and k-d tree partitioners.
``repro.workloads``
    TPC-H-like, ErrorLog-Int/Ext, and microbenchmark generators.
``repro.bench``
    Experiment harness and metrics used by the ``benchmarks/`` suite.
"""

from . import (
    baselines,
    bench,
    core,
    db,
    engine,
    exec,
    rl,
    serve,
    sql,
    storage,
    workloads,
)

__version__ = "1.3.0"

__all__ = [
    "__version__",
    "baselines",
    "bench",
    "core",
    "db",
    "engine",
    "exec",
    "rl",
    "serve",
    "sql",
    "storage",
    "workloads",
]
